//! Extension: production serving sweep — admission policy × overload
//! regime on a trace-scale fleet, plus fault and autoscale scenarios.
//!
//! The fleet sweep (`fleet.rs`) asks what the *routing* tier is worth;
//! this sweep asks what the *admission* tier is worth when the fleet is
//! genuinely overloaded. An eight-device fleet (half co-hosting
//! training) serves a full simulated day of trace-scale traffic — a
//! diurnal profile composed with a midday flash crowd, mean offered
//! load pinned at 80 %, 100 %, and 120 % of aggregate saturation — and
//! every [`AdmissionSpec`] policy is held against the same per-request
//! deadline with a 60/40 paid/free tier mix. Two scenario cells ride
//! along: the 120 % overload with a DRAM-throttle fault on one
//! (cycle-accurate) device, and a reactive-autoscaling day that must
//! join on the crowd and drain on the trough without losing a single
//! in-flight request.
//!
//! Devices are evaluated by the static-bounds surrogate (exact bounds,
//! so service times match the engine), which attributes every request's
//! fate to its tier; the full day at `Full` scale offers over a million
//! requests per overload cell while the sweep stays minutes-cheap. The
//! gate the CI smoke holds: at 120 % offered load (with and without the
//! fault) the priority policy keeps the paid tier's p999 inside the
//! deadline with zero paid deadline misses while admit-all blows
//! through it, free traffic is shed ahead of paid, the autoscaler both
//! joins and drains, and the serving-layer lints (`EQX07xx`) are clean
//! on the swept parameters.

use crate::experiments::fitted::FittedCalibration;
use crate::experiments::ExperimentScale;
use equinox_arith::Encoding;
use equinox_check::diag::json_string;
use equinox_check::{analyze_serving, ServingParams};
use equinox_fleet::{
    AdmissionSpec, ArrivalSource, AutoscalePolicy, DeviceSpec, Fleet, FleetRunOptions,
    RoutingPolicy, ScalingKind,
};
use equinox_isa::lower::InferenceTiming;
use equinox_isa::training::TrainingProfile;
use equinox_isa::ArrayDims;
use equinox_sim::loadgen::{trace_mean_load, DiurnalProfile, FlashCrowd};
use equinox_sim::{AcceleratorConfig, FaultScenario, RequestClass, SloSpec};

/// Devices in the serving fleet (the second half co-hosts training).
pub const FLEET_SIZE: usize = 8;

/// Mean offered loads swept (fractions of aggregate fleet saturation,
/// crowd included): below, at, and 20 % past saturation.
pub const LOADS: [f64; 3] = [0.8, 1.0, 1.2];

/// The overload operating point the headline gates are held at.
pub const OVERLOAD: f64 = 1.2;

/// Probability that an arrival is paid-tier.
pub const PAID_FRACTION: f64 = 0.6;

/// Per-request deadline as a multiple of the batch service time
/// (matches the fleet sweep so SLO numbers are comparable).
const DEADLINE_X: f64 = 16.0;

/// Master seed of every run in the sweep.
const SWEEP_SEED: u64 = 42;

/// Per-tier outcome of one cell.
#[derive(Debug, Clone)]
pub struct TierStats {
    /// Requests of this tier offered at the front end.
    pub offered: usize,
    /// Requests shed (fleet-edge admission + device-local).
    pub shed: usize,
    /// Attributed completions.
    pub completed: usize,
    /// Attributed deadline misses.
    pub misses: usize,
    /// Admitted requests whose fate a cycle-accurate device could not
    /// attribute per-tier.
    pub unattributed: usize,
    /// Shed requests over offered.
    pub shed_rate: f64,
    /// 99.9th-percentile latency of attributed completions, ms.
    pub p999_ms: f64,
}

/// One (scenario, admission policy, load) cell.
#[derive(Debug, Clone)]
pub struct ServeCell {
    /// Scenario kind: `steady`, `fault`, or `autoscale`.
    pub kind: &'static str,
    /// Admission policy name.
    pub admission: &'static str,
    /// Mean offered load (fraction of aggregate saturation).
    pub load: f64,
    /// Requests offered at the front end.
    pub offered: usize,
    /// Requests the admission policy rejected at the fleet edge.
    pub admission_shed: usize,
    /// Requests completed fleet-wide.
    pub completed: u64,
    /// Requests shed by device-local policies.
    pub device_shed: u64,
    /// Requests still queued on devices at the horizon.
    pub final_queue: usize,
    /// Autoscale joins observed.
    pub joins: usize,
    /// Autoscale drains observed.
    pub drains: usize,
    /// Fleet-wide 99.9th-percentile latency, ms.
    pub p999_ms: f64,
    /// Device-side SLO violations (misses + device shed + dropped).
    pub violations: usize,
    /// Paid-tier ledger summary.
    pub paid: TierStats,
    /// Free-tier ledger summary.
    pub free: TierStats,
    /// Requests routed per device, in device-index order.
    pub assigned_per_device: Vec<usize>,
}

/// The full sweep result.
#[derive(Debug, Clone)]
pub struct ServeSweep {
    /// The per-request deadline every run was held against, ms.
    pub deadline_ms: f64,
    /// The deadline of the `scaled` cell, ms (16× the fitted LSTM
    /// batch service time — the devices differ, so the deadline does).
    pub scaled_deadline_ms: f64,
    /// Paid-tier arrival probability.
    pub paid_fraction: f64,
    /// Offered-request floor the trace-scale gate requires of the
    /// heaviest cell (10⁶ at `Full` scale).
    pub min_offered: usize,
    /// Error-severity `EQX07xx` findings on the swept parameters.
    pub lint_errors: usize,
    /// Warning-severity `EQX07xx` findings on the swept parameters.
    pub lint_warnings: usize,
    /// All cells: steady (load-major, then policy in canonical order),
    /// then fault, then autoscale.
    pub cells: Vec<ServeCell>,
}

/// The synthetic serving device: 16-request batches served in 16 µs at
/// 1 GHz (saturation 1 M req/s), evaluated by the static-bounds
/// surrogate with exact bounds so service times match the engine.
fn serve_device(i: usize) -> DeviceSpec {
    let dims = ArrayDims { n: 16, w: 4, m: 4 };
    let config = AcceleratorConfig::new(format!("serve[{i}]"), dims, 1e9, Encoding::Hbfp8);
    let timing = InferenceTiming {
        total_cycles: 16_000,
        mmu_busy_cycles: 12_000,
        mmu_utilization: 0.85,
        stall_cycles: 1_000,
        simd_busy_cycles: 2_000,
        total_macs: 32_000_000,
        macs_per_request: 2_000_000,
        batch: 16,
    };
    let spec = DeviceSpec::new(config, timing);
    let spec = if i >= FLEET_SIZE - FLEET_SIZE / 2 {
        spec.with_training(TrainingProfile {
            iteration_macs: 1_000_000_000,
            iteration_mmu_cycles: 40_000,
            iteration_dram_bytes: 4_000_000,
            iteration_simd_cycles: 4_000,
            batch: 128,
        })
    } else {
        spec
    };
    spec.with_static_bounds(16_000, 16_000)
}

/// The trace day: a diurnal profile averaging 30 % load with a midday
/// flash crowd multiplying the rate 2.5× for 8 % of the day.
fn trace_day() -> (DiurnalProfile, FlashCrowd) {
    (
        DiurnalProfile::thirty_percent_average(),
        FlashCrowd { start_frac: 0.55, duration_frac: 0.08, multiplier: 2.5 },
    )
}

/// The autoscaling policy of the `autoscale` cell, sized relative to
/// the horizon so `Quick` and `Full` exercise the same dynamics.
fn autoscale_policy(horizon_s: f64) -> AutoscalePolicy {
    AutoscalePolicy {
        min_devices: 2,
        initial_devices: 2,
        up_backlog_batches: 1.0,
        down_backlog_batches: 0.125,
        sustain_s: horizon_s / 200.0,
        drain_grace_s: horizon_s / 100.0,
    }
}

fn tier_stats(report: &equinox_fleet::FleetReport, class: RequestClass) -> TierStats {
    let l = report.class_ledger(class);
    TierStats {
        offered: l.offered_requests,
        shed: l.shed_requests,
        completed: l.completed_requests,
        misses: l.deadline_misses,
        unattributed: l.unattributed_requests,
        shed_rate: l.shed_rate(),
        p999_ms: l.p999_s() * 1e3,
    }
}

/// Runs the sweep.
pub fn run(scale: ExperimentScale) -> ServeSweep {
    let devices: Vec<DeviceSpec> = (0..FLEET_SIZE).map(serve_device).collect();
    let deadline_s = DEADLINE_X * devices[0].service_time_s();
    let slo = SloSpec::new(deadline_s).expect("positive deadline");
    // One simulated "day" in batch-service intervals.
    let (intervals, min_offered): (u64, usize) = match scale {
        ExperimentScale::Quick => (9_375 / 16, 50_000),
        ExperimentScale::Full => (9_375, 1_000_000),
    };
    let horizon = intervals * 16_000;
    let horizon_s = horizon as f64 / 1e9;
    let (profile, crowd) = trace_day();
    let trace_mean =
        trace_mean_load(&profile, &[crowd]).expect("the trace day is well-formed");
    let scaler = autoscale_policy(horizon_s);

    let base = FleetRunOptions {
        source: ArrivalSource::Trace { profile, rate_scale: 1.0, crowd },
        policy: RoutingPolicy::training_aware_default(),
        admission: AdmissionSpec::AdmitAll,
        autoscale: None,
        paid_fraction: PAID_FRACTION,
        horizon_cycles: horizon,
        seed: SWEEP_SEED,
        slo: Some(slo),
    };

    // The grid, in artifact order: steady load × policy cells, the two
    // fault cells at the overload point, and the autoscaling day.
    enum Cell {
        Steady { admission: AdmissionSpec, load: f64 },
        Fault { admission: AdmissionSpec },
        Autoscale,
    }
    let mut grid: Vec<Cell> = Vec::new();
    for &load in &LOADS {
        for admission in AdmissionSpec::all_default() {
            grid.push(Cell::Steady { admission, load });
        }
    }
    for admission in [AdmissionSpec::AdmitAll, AdmissionSpec::priority_default()] {
        grid.push(Cell::Fault { admission });
    }
    grid.push(Cell::Autoscale);

    let mut cells = equinox_par::parallel_map(grid, |cell| {
        let (kind, load, admission, autoscale, fault) = match cell {
            Cell::Steady { admission, load } => ("steady", load, admission, None, false),
            Cell::Fault { admission } => ("fault", OVERLOAD, admission, None, true),
            // The autoscaling day runs below saturation so the trough
            // genuinely idles the fleet; admission stays admit-all to
            // isolate the scaling dynamics.
            Cell::Autoscale => ("autoscale", 0.5, AdmissionSpec::AdmitAll, Some(scaler), false),
        };
        let mut devices = devices.clone();
        if fault {
            // One device loses 65 % of its DRAM bandwidth mid-day; it
            // runs cycle-accurately (the surrogate cannot price
            // faults), so its completions land unattributed.
            devices[0] = DeviceSpec::new(devices[0].config.clone(), devices[0].timing)
                .with_scenario(
                    FaultScenario::named("dram_throttle")
                        .with_throttle(horizon * 3 / 10, horizon * 6 / 10, 0.35),
                );
        }
        let fleet = Fleet::new(devices).expect("the serving fleet is valid");
        let report = fleet
            .run(&FleetRunOptions {
                source: ArrivalSource::Trace {
                    profile,
                    rate_scale: load / trace_mean,
                    crowd,
                },
                admission,
                autoscale,
                ..base
            })
            .expect("serve runs complete");
        let joins = report
            .scaling_spans
            .iter()
            .filter(|s| s.kind == ScalingKind::Join)
            .count();
        ServeCell {
            kind,
            admission: admission.name(),
            load,
            offered: report.offered_requests,
            admission_shed: report.admission_shed_requests,
            completed: report.completed_requests(),
            device_shed: report.shed_requests(),
            final_queue: report
                .devices
                .iter()
                .filter_map(|d| d.report.slo.as_ref())
                .map(|s| s.final_queue_depth)
                .sum(),
            joins,
            drains: report.scaling_spans.len() - joins,
            p999_ms: report.p999_ms(),
            violations: report.total_violations(),
            paid: tier_stats(&report, RequestClass::Paid),
            free: tier_stats(&report, RequestClass::Free),
            assigned_per_device: report
                .devices
                .iter()
                .map(|d| d.assigned_requests)
                .collect(),
        }
    });

    // The scaled cell: the same trace day served by a 64-device fleet
    // of fitted-surrogate LSTM devices (half harvesting) under priority
    // admission, at a horizon ≥ 10× the Quick day in the scaled
    // fleet's own batch-service intervals. It rides in the same cell
    // vector with kind `scaled` — only the deadline differs (real
    // devices, real service time), recorded as `scaled_deadline_ms`.
    let fit = FittedCalibration::shared(scale)
        .fit("LSTM")
        .expect("the LSTM table is fitted")
        .clone();
    let scaled_deadline_s = DEADLINE_X * fit.measured_cycles as f64
        / FittedCalibration::shared(scale).freq_hz;
    let (scaled_size, scaled_load, scaled_intervals): (usize, f64, u64) = match scale {
        ExperimentScale::Quick => (64, 0.05, 5_860),
        ExperimentScale::Full => (64, 0.05, 18_750),
    };
    let scaled_devices: Vec<DeviceSpec> = (0..scaled_size)
        .map(|i| fit.device(&format!("fit[{i}]"), i >= scaled_size - scaled_size / 2))
        .collect();
    let scaled_fleet = Fleet::new(scaled_devices).expect("fitted devices validate");
    let scaled_report = scaled_fleet
        .run(&FleetRunOptions {
            source: ArrivalSource::Trace {
                profile,
                rate_scale: scaled_load / trace_mean,
                crowd,
            },
            admission: AdmissionSpec::priority_default(),
            horizon_cycles: scaled_intervals * fit.measured_cycles,
            slo: Some(SloSpec::new(scaled_deadline_s).expect("positive deadline")),
            ..base
        })
        .expect("the scaled serve run completes");
    cells.push(ServeCell {
        kind: "scaled",
        admission: AdmissionSpec::priority_default().name(),
        load: scaled_load,
        offered: scaled_report.offered_requests,
        admission_shed: scaled_report.admission_shed_requests,
        completed: scaled_report.completed_requests(),
        device_shed: scaled_report.shed_requests(),
        final_queue: scaled_report
            .devices
            .iter()
            .filter_map(|d| d.report.slo.as_ref())
            .map(|s| s.final_queue_depth)
            .sum(),
        joins: 0,
        drains: 0,
        p999_ms: scaled_report.p999_ms(),
        violations: scaled_report.total_violations(),
        paid: tier_stats(&scaled_report, RequestClass::Paid),
        free: tier_stats(&scaled_report, RequestClass::Free),
        assigned_per_device: scaled_report
            .devices
            .iter()
            .map(|d| d.assigned_requests)
            .collect(),
    });

    // The serving-layer lints over the exact parameters the sweep ran:
    // every policy's defaults plus the autoscaler, against the fleet's
    // real deadline and service-time scales.
    let lints = analyze_serving(&ServingParams {
        deadline_s,
        batch_service_s: devices[0].service_time_s(),
        paid_offered_floor_x: PAID_FRACTION * LOADS[0],
        slack_x: 0.8,
        token_rate_x: 0.95,
        burst_batches: 4.0,
        free_reserve_batches: 1.0,
        up_backlog_batches: scaler.up_backlog_batches,
        down_backlog_batches: scaler.down_backlog_batches,
        sustain_s: scaler.sustain_s,
        drain_grace_s: scaler.drain_grace_s,
    });
    let lint_errors = lints
        .iter()
        .filter(|d| d.severity == equinox_check::Severity::Error)
        .count();

    ServeSweep {
        deadline_ms: deadline_s * 1e3,
        scaled_deadline_ms: scaled_deadline_s * 1e3,
        paid_fraction: PAID_FRACTION,
        min_offered,
        lint_errors,
        lint_warnings: lints.len() - lint_errors,
        cells,
    }
}

impl ServeSweep {
    /// The cell for (`kind`, `admission`, `load`), if present.
    pub fn cell(&self, kind: &str, admission: &str, load: f64) -> Option<&ServeCell> {
        self.cells.iter().find(|c| {
            c.kind == kind && c.admission == admission && (c.load - load).abs() < 1e-9
        })
    }

    /// True when the paid tier held its SLO in `cell`: p999 inside the
    /// deadline and not a single attributed paid deadline miss.
    fn paid_holds(&self, cell: &ServeCell) -> bool {
        cell.paid.p999_ms <= self.deadline_ms && cell.paid.misses == 0
    }

    /// The headline gate: at 120 % offered load — both the clean
    /// overload and the faulted one — the priority policy holds the
    /// paid tier's SLO while admit-all violates it.
    pub fn priority_protects_paid(&self) -> bool {
        ["steady", "fault"].iter().all(|kind| {
            let (Some(pri), Some(all)) = (
                self.cell(kind, "priority", OVERLOAD),
                self.cell(kind, "admit_all", OVERLOAD),
            ) else {
                return false;
            };
            self.paid_holds(pri) && !self.paid_holds(all)
        })
    }

    /// Priority classes work: under overload the free tier is shed at a
    /// strictly higher rate than the paid tier.
    pub fn free_is_shed_first(&self) -> bool {
        ["steady", "fault"].iter().all(|kind| {
            self.cell(kind, "priority", OVERLOAD)
                .is_some_and(|c| c.free.shed_rate > c.paid.shed_rate)
        })
    }

    /// The autoscaling day both grew and shrank the fleet, and lost
    /// nothing: every offered request is admission-shed, completed,
    /// device-shed, or still queued at the horizon.
    pub fn autoscale_drains_cleanly(&self) -> bool {
        self.cells.iter().filter(|c| c.kind == "autoscale").all(|c| {
            c.joins >= 1
                && c.drains >= 1
                && c.admission_shed + c.completed as usize + c.device_shed as usize
                    + c.final_queue
                    == c.offered
        }) && self.cells.iter().any(|c| c.kind == "autoscale")
    }

    /// The sweep reached trace scale: the heaviest cell offered at
    /// least [`ServeSweep::min_offered`] requests.
    pub fn trace_scale_reached(&self) -> bool {
        self.cells.iter().map(|c| c.offered).max().unwrap_or(0) >= self.min_offered
    }

    /// No error-severity `EQX07xx` finding on the swept parameters.
    pub fn lints_clean(&self) -> bool {
        self.lint_errors == 0
    }

    /// The gate the CI smoke holds the tree to.
    pub fn passes(&self) -> bool {
        self.priority_protects_paid()
            && self.free_is_shed_first()
            && self.autoscale_drains_cleanly()
            && self.trace_scale_reached()
            && self.lints_clean()
    }

    /// The sweep as a JSON document (hand-rolled; the workspace carries
    /// no serialization dependency).
    pub fn to_json(&self) -> String {
        fn tier(t: &TierStats) -> String {
            format!(
                "{{\"offered\":{},\"shed\":{},\"completed\":{},\"misses\":{},\
                 \"unattributed\":{},\"shed_rate\":{},\"p999_ms\":{}}}",
                t.offered, t.shed, t.completed, t.misses, t.unattributed, t.shed_rate,
                t.p999_ms,
            )
        }
        let mut out = String::from("{");
        out.push_str(&format!("\"deadline_ms\":{},", self.deadline_ms));
        out.push_str(&format!("\"scaled_deadline_ms\":{},", self.scaled_deadline_ms));
        out.push_str(&format!("\"paid_fraction\":{},", self.paid_fraction));
        out.push_str(&format!("\"min_offered\":{},", self.min_offered));
        out.push_str(&format!(
            "\"lint_errors\":{},\"lint_warnings\":{},",
            self.lint_errors, self.lint_warnings
        ));
        out.push_str(&format!(
            "\"gates\":{{\"priority_protects_paid\":{},\"free_is_shed_first\":{},\
             \"autoscale_drains_cleanly\":{},\"trace_scale_reached\":{},\
             \"lints_clean\":{},\"passes\":{}}},",
            self.priority_protects_paid(),
            self.free_is_shed_first(),
            self.autoscale_drains_cleanly(),
            self.trace_scale_reached(),
            self.lints_clean(),
            self.passes(),
        ));
        out.push_str("\"cells\":[");
        for (i, c) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let assigned: Vec<String> =
                c.assigned_per_device.iter().map(|v| format!("{v}")).collect();
            out.push_str(&format!(
                "{{\"kind\":{},\"admission\":{},\"load\":{},\"offered\":{},\
                 \"admission_shed\":{},\"completed\":{},\"device_shed\":{},\
                 \"final_queue\":{},\"joins\":{},\"drains\":{},\"p999_ms\":{},\
                 \"violations\":{},\"paid\":{},\"free\":{},\
                 \"assigned_per_device\":[{}]}}",
                json_string(c.kind),
                json_string(c.admission),
                c.load,
                c.offered,
                c.admission_shed,
                c.completed,
                c.device_shed,
                c.final_queue,
                c.joins,
                c.drains,
                c.p999_ms,
                c.violations,
                tier(&c.paid),
                tier(&c.free),
                assigned.join(","),
            ));
        }
        out.push_str("]}");
        out
    }
}

impl std::fmt::Display for ServeSweep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Serving sweep — {FLEET_SIZE} surrogate devices, trace-day traffic \
             (diurnal × flash crowd), deadline {:.3} ms, {:.0}% paid:",
            self.deadline_ms,
            self.paid_fraction * 100.0,
        )?;
        writeln!(
            f,
            "  {:<9} {:<14} {:>5} {:>9} {:>9} {:>9} {:>10} {:>10} {:>5} {:>6}",
            "Scenario", "Admission", "Load", "Offered", "EdgeShed", "Complete", "Paid999ms",
            "Free-shed", "Joins", "Drains"
        )?;
        for c in &self.cells {
            writeln!(
                f,
                "  {:<9} {:<14} {:>4.0}% {:>9} {:>9} {:>9} {:>10.3} {:>9.1}% {:>5} {:>6}",
                c.kind,
                c.admission,
                c.load * 100.0,
                c.offered,
                c.admission_shed,
                c.completed,
                c.paid.p999_ms,
                c.free.shed_rate * 100.0,
                c.joins,
                c.drains,
            )?;
        }
        writeln!(
            f,
            "  gates: priority_protects_paid={} free_is_shed_first={} \
             autoscale_drains_cleanly={} trace_scale_reached={} lints_clean={}",
            self.priority_protects_paid(),
            self.free_is_shed_first(),
            self.autoscale_drains_cleanly(),
            self.trace_scale_reached(),
            self.lints_clean(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// The Quick sweep, shared across tests (15 fleet runs).
    fn sweep() -> &'static ServeSweep {
        static SWEEP: OnceLock<ServeSweep> = OnceLock::new();
        SWEEP.get_or_init(|| run(ExperimentScale::Quick))
    }

    #[test]
    fn grid_covers_scenarios_policies_and_loads() {
        let s = sweep();
        assert_eq!(s.cells.len(), LOADS.len() * 4 + 2 + 1 + 1);
        assert_eq!(s.cells.iter().filter(|c| c.kind == "steady").count(), 12);
        assert_eq!(s.cells.iter().filter(|c| c.kind == "fault").count(), 2);
        assert_eq!(s.cells.iter().filter(|c| c.kind == "autoscale").count(), 1);
        assert_eq!(s.cells.iter().filter(|c| c.kind == "scaled").count(), 1);
        let policies: std::collections::BTreeSet<_> =
            s.cells.iter().map(|c| c.admission).collect();
        assert_eq!(policies.len(), 4);
    }

    #[test]
    fn scaled_cell_serves_the_trace_day_on_a_fitted_fleet() {
        let s = sweep();
        let c = s.cells.iter().find(|c| c.kind == "scaled").expect("scaled cell exists");
        assert_eq!(c.assigned_per_device.len(), 64);
        assert!(c.offered > 1_000_000, "scaled cell is trace-scale: {}", c.offered);
        assert!(c.completed > 0);
        // Tier ledgers partition the day.
        assert_eq!(c.paid.offered + c.free.offered, c.offered);
        assert!(s.scaled_deadline_ms > s.deadline_ms, "LSTM batches are slower");
    }

    #[test]
    fn requests_are_conserved_in_every_cell() {
        for c in &sweep().cells {
            let assigned: usize = c.assigned_per_device.iter().sum();
            assert_eq!(
                assigned + c.admission_shed,
                c.offered,
                "{} {}",
                c.kind,
                c.admission
            );
            if c.kind != "fault" {
                // All-surrogate cells attribute every admitted request:
                // completed, device-shed, or queued at the horizon.
                assert_eq!(
                    c.completed as usize + c.device_shed as usize + c.final_queue,
                    assigned,
                    "{} {}",
                    c.kind,
                    c.admission
                );
            }
            // Tier ledgers partition the offered stream.
            assert_eq!(c.paid.offered + c.free.offered, c.offered);
            for t in [&c.paid, &c.free] {
                assert!(t.shed + t.completed + t.unattributed <= t.offered);
            }
        }
    }

    #[test]
    fn priority_admission_protects_the_paid_tier() {
        let s = sweep();
        assert!(s.priority_protects_paid(), "{s}");
        assert!(s.free_is_shed_first(), "{s}");
        // The overload is real: admit-all at 120 % misses deadlines.
        let all = s.cell("steady", "admit_all", OVERLOAD).unwrap();
        assert!(all.paid.misses > 0, "{s}");
    }

    #[test]
    fn autoscale_joins_and_drains_without_loss() {
        let s = sweep();
        assert!(s.autoscale_drains_cleanly(), "{s}");
    }

    #[test]
    fn sweep_passes_its_gate_and_reaches_quick_scale() {
        let s = sweep();
        assert!(s.trace_scale_reached(), "{s}");
        assert!(s.lints_clean(), "{s}");
        assert!(s.passes(), "{s}");
    }

    #[test]
    fn artifact_records_gates_and_tiers() {
        let json = sweep().to_json();
        assert!(json.contains("\"passes\":true"), "{json}");
        assert!(json.contains("\"priority_protects_paid\":true"));
        assert!(json.contains("\"admission\":\"token_bucket\""));
        assert!(json.contains("\"kind\":\"autoscale\""));
        assert!(json.contains("\"paid\":{\"offered\":"));
    }

    #[test]
    fn sweep_is_deterministic() {
        // Two fresh runs (not the shared one) must render identically.
        let a = run(ExperimentScale::Quick).to_json();
        let b = run(ExperimentScale::Quick).to_json();
        assert_eq!(a, b);
    }
}
