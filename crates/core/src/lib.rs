//! # equinox-core
//!
//! The high-level Equinox API and the experiment drivers that regenerate
//! every table and figure of the paper's evaluation (§6).
//!
//! [`Equinox`] wires the workspace together: the §4 design-space
//! exploration picks a Pareto-optimal geometry for a latency constraint,
//! the `equinox-isa` compiler lowers workloads onto it, and the
//! `equinox-sim` engine serves Poisson traffic while piggybacking
//! training.
//!
//! Each module under [`experiments`] regenerates one paper artifact and
//! returns structured rows/series (plus a `Display` rendering):
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`experiments::fig2`] | Fig. 2 — hbfp8 vs fp32 convergence |
//! | [`experiments::fig6`] | Fig. 6 — latency/throughput design space |
//! | [`experiments::table1`] | Table 1 — Pareto designs per constraint |
//! | [`experiments::fig7`] | Fig. 7 — inference tail latency vs throughput |
//! | [`experiments::fig8`] | Fig. 8 — MMU cycle breakdown |
//! | [`experiments::fig9`] | Fig. 9 — training throughput vs load |
//! | [`experiments::table2`] | Table 2 — workload sensitivity |
//! | [`experiments::table3`] | Table 3 — area/power breakdown |
//! | [`experiments::fig10`] | Fig. 10 — priority vs fair scheduling |
//! | [`experiments::fig11`] | Fig. 11 — adaptive batching |
//!
//! ## Example
//!
//! ```
//! use equinox_core::Equinox;
//! use equinox_arith::Encoding;
//! use equinox_model::LatencyConstraint;
//! use equinox_isa::models::ModelSpec;
//!
//! let eq = Equinox::build(Encoding::Hbfp8, LatencyConstraint::Micros(500))
//!     .expect("a 500 µs design exists");
//! let timing = eq.compile(&ModelSpec::lstm_2048_25()).expect("the LSTM compiles");
//! assert!(timing.service_time_s(eq.freq_hz()) < 700e-6);
//! ```

pub mod accelerator;
pub mod experiments;

pub use accelerator::{Equinox, RunOptions};
pub use experiments::ExperimentScale;
