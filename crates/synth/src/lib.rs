//! # equinox-synth
//!
//! Component-level area/power roll-up — the substitute for the paper's
//! Synopsys DC + TSMC 28 nm synthesis flow (§5, Table 3).
//!
//! Unlike the §4 first-order models (which only track the dominant
//! components), this roll-up covers every block of Figure 3: the MMU,
//! the DRAM interface, the SIMD unit (with its 5 MB register file), the
//! weight and activation buffers, the request and instruction
//! dispatchers, and the remaining logic (im2col, host interface,
//! interconnect). Component structure scales with the configuration;
//! per-unit constants are calibrated against Table 3 (see DESIGN.md).
//!
//! The two §6 synthesis claims are exposed directly:
//! [`SynthesisReport::controller_overhead`] (< 1 %) and
//! [`SynthesisReport::encoding_overhead`] (≈13 % power / ≈4 % area).
//!
//! ## Example
//!
//! ```
//! use equinox_synth::SynthesisReport;
//! use equinox_isa::ArrayDims;
//! use equinox_arith::Encoding;
//!
//! let report = SynthesisReport::for_config(
//!     &ArrayDims { n: 186, w: 3, m: 3 }, 610e6, Encoding::Hbfp8);
//! let (area_frac, power_frac) = report.controller_overhead();
//! assert!(area_frac < 0.01 && power_frac < 0.01);
//! ```

use equinox_arith::Encoding;
use equinox_isa::ArrayDims;
use equinox_model::{EncodingParams, TechnologyParams};

/// Per-lane area of a SIMD lane, mm²: a bfloat16 ALU with activation-
/// function (and, in Equinox, derivative/loss) support — substantially
/// larger than a fixed-point MAC.
const SIMD_LANE_AREA_MM2: f64 = 0.0158;

/// Per-lane-op energy of the SIMD unit at nominal voltage, pJ
/// (transcendental-capable bfloat16 lane plus register-file access).
const SIMD_LANE_ENERGY_PJ: f64 = 68.0;

/// SIMD register-file capacity, MB (§5's SRAM split).
const SIMD_REGFILE_MB: f64 = 5.0;

/// Weight-buffer capacity, MB.
const WEIGHT_BUFFER_MB: f64 = 50.0;

/// Activation-buffer capacity, MB.
const ACTIVATION_BUFFER_MB: f64 = 20.0;

/// Fixed area of the request dispatcher's control logic, mm².
const REQUEST_DISPATCHER_BASE_MM2: f64 = 0.30;

/// Batch-formation buffer area per batch slot, mm².
const REQUEST_DISPATCHER_PER_SLOT_MM2: f64 = 0.0026;

/// Request dispatcher power: base + per-slot, W.
const REQUEST_DISPATCHER_BASE_W: f64 = 0.08;
const REQUEST_DISPATCHER_PER_SLOT_W: f64 = 0.00065;

/// Instruction dispatcher (controller + 32 KB buffer + decoder), mm²/W.
const INSTRUCTION_DISPATCHER_MM2: f64 = 0.49;
const INSTRUCTION_DISPATCHER_W: f64 = 0.14;

/// Remaining logic: im2col unit, host interface, interconnect.
const OTHERS_MM2: f64 = 6.39;
const OTHERS_W: f64 = 3.77;

/// One row of Table 3.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentReport {
    /// Component name as printed in Table 3.
    pub name: String,
    /// Area, mm².
    pub area_mm2: f64,
    /// Power, W.
    pub power_w: f64,
}

/// The full Table 3 for one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisReport {
    components: Vec<ComponentReport>,
}

impl SynthesisReport {
    /// Rolls up every Figure 3 block for the given configuration.
    pub fn for_config(dims: &ArrayDims, freq_hz: f64, encoding: Encoding) -> Self {
        let tech = TechnologyParams::tsmc28();
        let enc = EncodingParams::for_encoding(encoding);
        let scale = tech.energy_scale_at(freq_hz);
        let alus = dims.alu_count() as f64;
        let (n, m, w) = (dims.n as f64, dims.m as f64, dims.w as f64);
        let pj_to_w = freq_hz * scale * 1e-12;
        let sram_static = tech.sram_static_w_per_mb;
        let sram_area = tech.sram_area_mm2_per_mb;
        let e_sram = tech.sram_energy_pj_per_byte * enc.bytes_per_value;
        let simd_lanes = m * n;
        let components = vec![
            ComponentReport {
                name: "MMU".into(),
                area_mm2: alus * enc.alu_area_mm2,
                power_w: alus * enc.alu_energy_pj * pj_to_w,
            },
            ComponentReport {
                name: "DRAM Interface".into(),
                area_mm2: tech.dram_area_mm2,
                power_w: tech.dram_power_w,
            },
            ComponentReport {
                name: "SIMD Unit".into(),
                area_mm2: SIMD_REGFILE_MB * sram_area + simd_lanes * SIMD_LANE_AREA_MM2,
                power_w: SIMD_REGFILE_MB * sram_static
                    + simd_lanes * SIMD_LANE_ENERGY_PJ * pj_to_w,
            },
            ComponentReport {
                name: "Weight Buffer".into(),
                // Weight reads: m·w·n bytes per cycle.
                area_mm2: WEIGHT_BUFFER_MB * sram_area,
                power_w: WEIGHT_BUFFER_MB * sram_static + m * w * n * e_sram * pj_to_w,
            },
            ComponentReport {
                name: "Activation Buffer".into(),
                // Activation reads w·n plus output writes m·n per cycle.
                area_mm2: ACTIVATION_BUFFER_MB * sram_area,
                power_w: ACTIVATION_BUFFER_MB * sram_static
                    + (w * n + m * n) * e_sram * pj_to_w,
            },
            ComponentReport {
                name: "Request Dispatcher".into(),
                area_mm2: REQUEST_DISPATCHER_BASE_MM2 + n * REQUEST_DISPATCHER_PER_SLOT_MM2,
                power_w: REQUEST_DISPATCHER_BASE_W + n * REQUEST_DISPATCHER_PER_SLOT_W,
            },
            ComponentReport {
                name: "Instruction Dispatcher".into(),
                area_mm2: INSTRUCTION_DISPATCHER_MM2,
                power_w: INSTRUCTION_DISPATCHER_W,
            },
            ComponentReport {
                name: "Others".into(),
                area_mm2: OTHERS_MM2,
                power_w: OTHERS_W,
            },
        ];
        SynthesisReport { components }
    }

    /// All component rows, in Table 3 order.
    pub fn components(&self) -> &[ComponentReport] {
        &self.components
    }

    /// A component by name.
    pub fn component(&self, name: &str) -> Option<&ComponentReport> {
        self.components.iter().find(|c| c.name == name)
    }

    /// Total area, mm².
    pub fn total_area_mm2(&self) -> f64 {
        self.components.iter().map(|c| c.area_mm2).sum()
    }

    /// Total power, W.
    pub fn total_power_w(&self) -> f64 {
        self.components.iter().map(|c| c.power_w).sum()
    }

    /// The scheduling-mechanism overhead — the request plus instruction
    /// dispatchers' share of (area, power). The paper reports < 1 % for
    /// both.
    pub fn controller_overhead(&self) -> (f64, f64) {
        let area: f64 = ["Request Dispatcher", "Instruction Dispatcher"]
            .iter()
            .filter_map(|n| self.component(n))
            .map(|c| c.area_mm2)
            .sum();
        let power: f64 = ["Request Dispatcher", "Instruction Dispatcher"]
            .iter()
            .filter_map(|n| self.component(n))
            .map(|c| c.power_w)
            .sum();
        (area / self.total_area_mm2(), power / self.total_power_w())
    }

    /// The numeric-encoding overhead versus a fixed-point-only inference
    /// accelerator — the SIMD unit's share of (area, power), since its
    /// large register file and bfloat16 ALUs exist to support HBFP
    /// training. The paper reports ≈4 % area and ≈13 % power.
    pub fn encoding_overhead(&self) -> (f64, f64) {
        let simd = self.component("SIMD Unit").expect("SIMD Unit is always present");
        (
            simd.area_mm2 / self.total_area_mm2(),
            simd.power_w / self.total_power_w(),
        )
    }

    /// Fraction of area and power in the MMU + DRAM interface + buffers
    /// (the paper observes these dominate with ≈95 % / ≈82 %).
    pub fn datapath_share(&self) -> (f64, f64) {
        let names = [
            "MMU",
            "DRAM Interface",
            "Weight Buffer",
            "Activation Buffer",
            "SIMD Unit",
        ];
        let area: f64 = names.iter().filter_map(|n| self.component(n)).map(|c| c.area_mm2).sum();
        let power: f64 = names.iter().filter_map(|n| self.component(n)).map(|c| c.power_w).sum();
        (area / self.total_area_mm2(), power / self.total_power_w())
    }
}

impl std::fmt::Display for SynthesisReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{:<24} {:>10} {:>10}", "Component", "Area (mm2)", "Power (W)")?;
        writeln!(f, "{}", "-".repeat(46))?;
        for c in &self.components {
            writeln!(f, "{:<24} {:>10.2} {:>10.2}", c.name, c.area_mm2, c.power_w)?;
        }
        writeln!(f, "{}", "-".repeat(46))?;
        write!(
            f,
            "{:<24} {:>10.2} {:>10.2}",
            "Total",
            self.total_area_mm2(),
            self.total_power_w()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Equinox_500µs-like geometry the paper synthesizes.
    fn report_500us() -> SynthesisReport {
        SynthesisReport::for_config(&ArrayDims { n: 186, w: 3, m: 3 }, 610e6, Encoding::Hbfp8)
    }

    #[test]
    fn totals_near_table3() {
        let r = report_500us();
        // Table 3: 313.85 mm², 85.91 W. Allow 15 %.
        let area = r.total_area_mm2();
        let power = r.total_power_w();
        assert!((area - 313.85).abs() / 313.85 < 0.15, "area {area}");
        assert!((power - 85.91).abs() / 85.91 < 0.15, "power {power}");
    }

    #[test]
    fn controller_overhead_below_one_percent() {
        let (a, p) = report_500us().controller_overhead();
        assert!(a < 0.01, "controller area share {a}");
        assert!(p < 0.01, "controller power share {p}");
        assert!(a > 0.0 && p > 0.0);
    }

    #[test]
    fn encoding_overhead_matches_claims() {
        let (a, p) = report_500us().encoding_overhead();
        // ≈4 % area, ≈13 % power.
        assert!(a > 0.02 && a < 0.07, "area share {a}");
        assert!(p > 0.09 && p < 0.17, "power share {p}");
    }

    #[test]
    fn datapath_dominates() {
        let (a, p) = report_500us().datapath_share();
        assert!(a > 0.9, "datapath area share {a}");
        assert!(p > 0.75, "datapath power share {p}");
    }

    #[test]
    fn buffer_areas_match_table3() {
        let r = report_500us();
        let wb = r.component("Weight Buffer").unwrap();
        let ab = r.component("Activation Buffer").unwrap();
        assert!((wb.area_mm2 - 45.96).abs() < 0.5, "{}", wb.area_mm2);
        assert!((ab.area_mm2 - 18.27).abs() < 0.5, "{}", ab.area_mm2);
    }

    #[test]
    fn mmu_dominates_power() {
        let r = report_500us();
        let mmu = r.component("MMU").unwrap();
        for c in r.components() {
            if c.name != "MMU" {
                assert!(mmu.power_w >= c.power_w, "{} out-powers MMU", c.name);
            }
        }
    }

    #[test]
    fn bf16_mmu_larger_than_hbfp8_at_same_dims() {
        let dims = ArrayDims { n: 32, w: 4, m: 8 };
        let h = SynthesisReport::for_config(&dims, 610e6, Encoding::Hbfp8);
        let b = SynthesisReport::for_config(&dims, 610e6, Encoding::Bfloat16);
        let hm = h.component("MMU").unwrap();
        let bm = b.component("MMU").unwrap();
        assert!(bm.area_mm2 > 3.0 * hm.area_mm2);
        assert!(bm.power_w > 4.0 * hm.power_w);
    }

    #[test]
    fn display_renders_table() {
        let s = report_500us().to_string();
        assert!(s.contains("MMU"));
        assert!(s.contains("Total"));
        assert!(s.contains("Request Dispatcher"));
    }

    #[test]
    fn component_lookup() {
        let r = report_500us();
        assert!(r.component("MMU").is_some());
        assert!(r.component("FPU").is_none());
    }
}
