//! Workload building blocks: the GEMM steps a DNN lowers to.
//!
//! Every supported layer type (dense, LSTM/GRU timestep, lowered
//! convolution) becomes a [`GemmStep`]: one matrix multiplication plus
//! its surrounding element-wise SIMD work, separated from the next step
//! by a dependence barrier.

/// How the MMU maps a GEMM onto its arrays (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GemmMode {
    /// Activations broadcast across arrays, weights unicast: used when
    /// the activation matrix is short relative to its length
    /// (vector-matrix models: RNN/MLP). Needs batch ≥ n for full
    /// utilization.
    VectorMatrix,
    /// Weights broadcast, activations unicast: used for tall activation
    /// matrices such as lowered convolutions; exhibits plenty of reuse.
    WeightBroadcast,
}

/// One dependence-delimited GEMM step of a model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GemmStep {
    /// Reduction dimension of the multiplication.
    pub k: usize,
    /// Output columns produced.
    pub out: usize,
    /// Activation rows contributed per request/sample (1 for
    /// vector-matrix models; the spatial extent for lowered
    /// convolutions).
    pub rows_per_sample: usize,
    /// Element-wise SIMD work following the GEMM, elements per sample.
    pub simd_elems_per_sample: usize,
    /// Mapping mode.
    pub mode: GemmMode,
    /// Consecutive repetitions of this step (RNN timesteps, residual
    /// blocks of identical shape).
    pub repeats: usize,
    /// True when all repetitions share one weight matrix (recurrent
    /// layers): the weights are counted once for footprint purposes.
    pub weights_shared_across_repeats: bool,
}

impl GemmStep {
    /// MACs per sample across all repetitions.
    pub fn macs_per_sample(&self) -> u64 {
        self.repeats as u64 * self.rows_per_sample as u64 * self.k as u64 * self.out as u64
    }

    /// SIMD elements per sample across all repetitions.
    pub fn simd_elems_total(&self) -> u64 {
        self.repeats as u64 * self.simd_elems_per_sample as u64
    }

    /// Weight parameters, counting shared recurrent weights once.
    pub fn weight_params(&self) -> u64 {
        let per_repeat = self.k as u64 * self.out as u64;
        if self.weights_shared_across_repeats {
            per_repeat
        } else {
            per_repeat * self.repeats as u64
        }
    }
}

/// Builders for the common layer types.
impl GemmStep {
    /// A fully-connected layer.
    pub fn dense(input: usize, output: usize) -> Self {
        GemmStep {
            k: input,
            out: output,
            rows_per_sample: 1,
            simd_elems_per_sample: output,
            mode: GemmMode::VectorMatrix,
            repeats: 1,
            weights_shared_across_repeats: false,
        }
    }

    /// One LSTM layer: per timestep, the four gate GEMMs against the
    /// hidden state fused into a single `hidden × 4·hidden`
    /// multiplication, followed by the gate element-wise network
    /// (3 sigmoids, 2 tanh, 3 multiplies ≈ 7·hidden element ops).
    pub fn lstm(hidden: usize, steps: usize) -> Self {
        GemmStep {
            k: hidden,
            out: 4 * hidden,
            rows_per_sample: 1,
            simd_elems_per_sample: 7 * hidden,
            mode: GemmMode::VectorMatrix,
            repeats: steps,
            weights_shared_across_repeats: true,
        }
    }

    /// One GRU layer: per timestep, the three gate GEMMs fused into a
    /// `hidden × 3·hidden` multiplication plus ≈6·hidden element ops.
    pub fn gru(hidden: usize, steps: usize) -> Self {
        GemmStep {
            k: hidden,
            out: 3 * hidden,
            rows_per_sample: 1,
            simd_elems_per_sample: 6 * hidden,
            mode: GemmMode::VectorMatrix,
            repeats: steps,
            weights_shared_across_repeats: true,
        }
    }

    /// A 2-D convolution lowered to GEMM by the im2col unit: the
    /// activation matrix has `out_h·out_w` rows per sample and
    /// `in_ch·kernel²` columns; the weight matrix produces `out_ch`
    /// outputs.
    pub fn conv2d(
        in_ch: usize,
        out_ch: usize,
        kernel: usize,
        out_h: usize,
        out_w: usize,
        repeats: usize,
    ) -> Self {
        GemmStep {
            k: in_ch * kernel * kernel,
            out: out_ch,
            rows_per_sample: out_h * out_w,
            simd_elems_per_sample: out_h * out_w * out_ch,
            mode: GemmMode::WeightBroadcast,
            repeats,
            weights_shared_across_repeats: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_counts() {
        let d = GemmStep::dense(100, 10);
        assert_eq!(d.macs_per_sample(), 1000);
        assert_eq!(d.weight_params(), 1000);
        assert_eq!(d.simd_elems_total(), 10);
        assert_eq!(d.mode, GemmMode::VectorMatrix);
    }

    #[test]
    fn lstm_shares_weights() {
        let l = GemmStep::lstm(2048, 25);
        assert_eq!(l.k, 2048);
        assert_eq!(l.out, 8192);
        assert_eq!(l.repeats, 25);
        // Weights counted once despite 25 steps.
        assert_eq!(l.weight_params(), 2048 * 8192);
        assert_eq!(l.macs_per_sample(), 25 * 2048 * 8192);
    }

    #[test]
    fn gru_shapes() {
        let g = GemmStep::gru(2816, 1500);
        assert_eq!(g.out, 3 * 2816);
        assert_eq!(g.weight_params(), 2816 * 3 * 2816);
        assert_eq!(g.macs_per_sample(), 1500 * 2816 * 8448);
    }

    #[test]
    fn conv_lowering_dims() {
        let c = GemmStep::conv2d(64, 128, 3, 28, 28, 2);
        assert_eq!(c.k, 64 * 9);
        assert_eq!(c.out, 128);
        assert_eq!(c.rows_per_sample, 784);
        assert_eq!(c.mode, GemmMode::WeightBroadcast);
        // Non-shared weights: counted per repeat.
        assert_eq!(c.weight_params(), 2 * 576 * 128);
    }

    #[test]
    fn lstm_macs_match_deepbench_scale() {
        // 25 × 2048 × 8192 ≈ 0.42 GMACs ⇒ ≈0.84 GOp + SIMD ≈ the 0.94 GOp
        // reference request cost the analytical model uses.
        let l = GemmStep::lstm(2048, 25);
        let gops = 2.0 * l.macs_per_sample() as f64 / 1e9;
        assert!(gops > 0.8 && gops < 0.9, "{gops}");
    }
}
