//! Static validation of programs against the accelerator's resources.
//!
//! Service installation (§3.1) loads a model's weights and instructions
//! into on-chip buffers; installation must fail cleanly when a service
//! does not fit. This module checks a workload against the §5 SRAM
//! split (20 MB activation / 50 MB weight / 32 KB instruction / 5 MB
//! SIMD registers) and the geometry's invariants.

use crate::encode::INSTRUCTION_BYTES;
use crate::models::ModelSpec;
use crate::program::Program;
use crate::ArrayDims;
use equinox_arith::Encoding;

/// The on-chip capacity limits a service installs against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BufferBudget {
    /// Weight buffer capacity, bytes.
    pub weight_bytes: u64,
    /// Activation buffer capacity, bytes.
    pub activation_bytes: u64,
    /// Instruction buffer capacity, bytes.
    pub instruction_bytes: u64,
}

impl BufferBudget {
    /// The paper's SRAM split (§5).
    pub fn paper_default() -> Self {
        BufferBudget {
            weight_bytes: 50 << 20,
            activation_bytes: 20 << 20,
            instruction_bytes: 32 << 10,
        }
    }
}

impl Default for BufferBudget {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Reasons an installation is rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// The model's weights exceed the weight buffer.
    WeightsDontFit {
        /// Required bytes.
        required: u64,
        /// Available bytes.
        available: u64,
    },
    /// One batch's live activations exceed the activation buffer.
    ActivationsDontFit {
        /// Required bytes.
        required: u64,
        /// Available bytes.
        available: u64,
    },
    /// A tile instruction exceeds the MMU geometry.
    TileTooLarge {
        /// Instruction index in the program.
        index: usize,
    },
    /// A program region between syncs would overflow the instruction
    /// buffer (regions are the streaming granularity). Counted in
    /// 16-byte encoded words: a tile multiply occupies three.
    RegionTooLarge {
        /// Encoded words in the offending region.
        words: usize,
        /// Instruction-buffer capacity in words.
        capacity: usize,
    },
}

impl ValidationError {
    /// The stable diagnostic code for this error, shared with the
    /// `equinox-check` analyzer's `EQXnnnn` code space so validation
    /// failures and analyzer findings are pinned the same way.
    pub fn code(&self) -> &'static str {
        match self {
            ValidationError::WeightsDontFit { .. } => "EQX0203",
            ValidationError::ActivationsDontFit { .. } => "EQX0204",
            ValidationError::TileTooLarge { .. } => "EQX0202",
            ValidationError::RegionTooLarge { .. } => "EQX0201",
        }
    }
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::WeightsDontFit { required, available } => write!(
                f,
                "model weights need {required} bytes but the weight buffer holds {available}"
            ),
            ValidationError::ActivationsDontFit { required, available } => write!(
                f,
                "batch activations need {required} bytes but the activation buffer holds {available}"
            ),
            ValidationError::TileTooLarge { index } => {
                write!(f, "instruction {index} addresses a tile larger than the MMU geometry")
            }
            ValidationError::RegionTooLarge { words, capacity } => write!(
                f,
                "a dependence region holds {words} encoded words but the buffer streams {capacity}"
            ),
        }
    }
}

impl std::error::Error for ValidationError {}

/// Checks whether `model` (served at `batch`) installs onto the
/// geometry under `budget`.
///
/// # Errors
///
/// The first violated constraint, in the order weights → activations.
pub fn validate_installation(
    model: &ModelSpec,
    encoding: Encoding,
    batch: usize,
    budget: &BufferBudget,
) -> Result<(), ValidationError> {
    let bytes_per_value = encoding.bytes_per_value() as u64;
    let weight_bytes = model.weight_params() * bytes_per_value;
    if weight_bytes > budget.weight_bytes {
        return Err(ValidationError::WeightsDontFit {
            required: weight_bytes,
            available: budget.weight_bytes,
        });
    }
    // Live activations: the widest step's outputs for a batch plus one
    // staged im2col row of inputs (the im2col unit streams the lowered
    // activation matrix; it is never materialized), double-buffered.
    let widest: u64 = model
        .steps()
        .iter()
        .map(|s| s.out as u64 * s.rows_per_sample as u64 + s.k as u64)
        .max()
        .unwrap_or(0);
    let act_bytes = 2 * widest * batch as u64 * bytes_per_value;
    if act_bytes > budget.activation_bytes {
        return Err(ValidationError::ActivationsDontFit {
            required: act_bytes,
            available: budget.activation_bytes,
        });
    }
    Ok(())
}

/// Checks a compiled program against the geometry and buffer limits.
///
/// # Errors
///
/// The first malformed instruction or oversized dependence region.
pub fn validate_program(
    program: &Program,
    dims: &ArrayDims,
    budget: &BufferBudget,
) -> Result<(), ValidationError> {
    let capacity = (budget.instruction_bytes as usize) / INSTRUCTION_BYTES;
    let mut region = 0usize;
    for (index, instr) in program.instructions().iter().enumerate() {
        match instr {
            crate::Instruction::MatMulTile { k_span, out_span, mode, .. } => {
                let max_out = match mode {
                    crate::layers::GemmMode::VectorMatrix => dims.tile_out(),
                    crate::layers::GemmMode::WeightBroadcast => dims.n,
                };
                if *k_span > dims.tile_k() || *out_span > max_out {
                    return Err(ValidationError::TileTooLarge { index });
                }
                region += instr.encoded_words();
            }
            crate::Instruction::Sync => {
                if region > capacity {
                    return Err(ValidationError::RegionTooLarge { words: region, capacity });
                }
                region = 0;
            }
            _ => region += instr.encoded_words(),
        }
    }
    if region > capacity {
        return Err(ValidationError::RegionTooLarge { words: region, capacity });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::GemmStep;
    use crate::lower::compile_inference;

    fn dims() -> ArrayDims {
        ArrayDims { n: 186, w: 3, m: 3 }
    }

    #[test]
    fn paper_workloads_install() {
        let budget = BufferBudget::paper_default();
        // The RNNs batch to the geometry's n; ResNet-50 batches at 8 —
        // its conv1 feature maps exceed the activation buffer at larger
        // batches, which is why Table 2 serves it in small batches.
        for (model, batch) in [
            (ModelSpec::lstm_2048_25(), 186),
            (ModelSpec::gru_2816_1500(), 186),
            (ModelSpec::resnet50(), 8),
        ] {
            validate_installation(&model, Encoding::Hbfp8, batch, &budget)
                .unwrap_or_else(|e| panic!("{} should install: {e}", model.name()));
        }
        // And batch 16 ResNet-50 indeed does not fit.
        assert!(matches!(
            validate_installation(&ModelSpec::resnet50(), Encoding::Hbfp8, 16, &budget),
            Err(ValidationError::ActivationsDontFit { .. })
        ));
    }

    #[test]
    fn oversized_model_rejected() {
        // 100M-parameter dense layer at 2 B/value > 50 MB weight buffer.
        let model = ModelSpec::new("huge", vec![GemmStep::dense(10_000, 10_000)]);
        let err = validate_installation(&model, Encoding::Bfloat16, 1, &BufferBudget::default())
            .unwrap_err();
        assert!(matches!(err, ValidationError::WeightsDontFit { .. }));
        assert!(err.to_string().contains("weight buffer"));
    }

    #[test]
    fn bf16_doubles_footprint() {
        // A model that fits in hbfp8 but not bfloat16.
        let model = ModelSpec::new("edge", vec![GemmStep::dense(6_000, 6_000)]);
        assert!(validate_installation(&model, Encoding::Hbfp8, 1, &BufferBudget::default()).is_ok());
        assert!(
            validate_installation(&model, Encoding::Bfloat16, 1, &BufferBudget::default()).is_err()
        );
    }

    #[test]
    fn huge_batch_activations_rejected() {
        let model = ModelSpec::gru_2816_1500();
        let err = validate_installation(&model, Encoding::Hbfp8, 4096, &BufferBudget::default())
            .unwrap_err();
        assert!(matches!(err, ValidationError::ActivationsDontFit { .. }));
    }

    #[test]
    fn compiler_output_validates() {
        let d = dims();
        for model in [ModelSpec::lstm_2048_25(), ModelSpec::resnet50()] {
            let batch = if model.is_vector_matrix() { d.n } else { 8 };
            let p = compile_inference(&model, &d, batch);
            validate_program(&p, &d, &BufferBudget::paper_default())
                .unwrap_or_else(|e| panic!("{} program must validate: {e}", model.name()));
        }
    }

    #[test]
    fn error_codes_are_stable() {
        let weights = ValidationError::WeightsDontFit { required: 2, available: 1 };
        let acts = ValidationError::ActivationsDontFit { required: 2, available: 1 };
        let tile = ValidationError::TileTooLarge { index: 0 };
        let region = ValidationError::RegionTooLarge { words: 2, capacity: 1 };
        assert_eq!(weights.code(), "EQX0203");
        assert_eq!(acts.code(), "EQX0204");
        assert_eq!(tile.code(), "EQX0202");
        assert_eq!(region.code(), "EQX0201");
    }

    #[test]
    fn oversized_tile_rejected() {
        let mut p = Program::new("bad");
        p.push(crate::Instruction::matmul(
            1,
            dims().tile_k() + 1,
            1,
            crate::layers::GemmMode::VectorMatrix,
        ));
        let err = validate_program(&p, &dims(), &BufferBudget::default()).unwrap_err();
        assert_eq!(err, ValidationError::TileTooLarge { index: 0 });
    }

    #[test]
    fn oversized_region_rejected() {
        let mut p = Program::new("long");
        for _ in 0..1000 {
            p.push(crate::Instruction::matmul(1, 1, 1, crate::layers::GemmMode::VectorMatrix));
        }
        // 32 KB / 16 B = 2048 words per region; 1000 three-word tile
        // multiplies overflow it.
        let err = validate_program(&p, &dims(), &BufferBudget::default()).unwrap_err();
        assert!(matches!(
            err,
            ValidationError::RegionTooLarge { words: 3000, capacity: 2048 }
        ));
        // With syncs every 600 instructions (1800 words) it streams.
        let mut ok = Program::new("split");
        for i in 0..3000 {
            ok.push(crate::Instruction::matmul(1, 1, 1, crate::layers::GemmMode::VectorMatrix));
            if i % 600 == 599 {
                ok.push(crate::Instruction::Sync);
            }
        }
        assert!(validate_program(&ok, &dims(), &BufferBudget::default()).is_ok());
    }
}
