//! The tiling compiler: lowering models onto an MMU geometry.
//!
//! Matrix multiplications are divided into tiles as in the paper's
//! Figure 4: the reduction dimension splits into chunks of `n·w`, and
//! the output dimension into groups of `m·n` (vector-matrix mode) or `n`
//! (weight-broadcast mode, where all arrays hold the same weight tile
//! and split the activation rows). Each `MatMulTile` instruction
//! addresses one activation tile and `m` weight tiles; `x` further
//! SIMD instructions add the intermediate output tiles.
//!
//! ## Operand placement
//!
//! Every operand is assigned a concrete byte [`Region`]:
//!
//! * **Weights.** If the model's weights fit the weight buffer, a
//!   prologue epoch installs every tile at a [`Bump`]-assigned offset
//!   (service installation, §3.1). Otherwise weights *stream*: each
//!   repeat's tiles are staged into alternating halves of the weight
//!   buffer (waves, when one repeat exceeds a half) right before the
//!   compute epoch that consumes them — the Brainwave-style large-model
//!   case.
//! * **Activations.** The activation buffer is split into ping/pong
//!   halves ([`DoubleBuffer`]): each step reads its input window from
//!   the active half and writes its output window to the spare half,
//!   then the halves flip. The installation check's
//!   `2 · widest · batch` bound guarantees both windows fit.
//! * **Output layout.** An output window is laid out column-group-major
//!   (one contiguous `rows × out_span` block per output group), so
//!   every tile's output — and the accumulation SIMD that folds `x`
//!   intermediate tiles — is a contiguous region.
//!
//! Allocation is total: oversized operands still get regions (past the
//! capacity) and the `equinox-check` `EQX0504` pass reports them, so
//! lowering never panics on geometries a model does not fit.

use crate::alloc::{Bump, DoubleBuffer};
use crate::instruction::{BufferKind, Instruction, Region, SimdOpKind};
use crate::layers::{GemmMode, GemmStep};
use crate::models::ModelSpec;
use crate::program::Program;
use crate::validate::BufferBudget;
use crate::ArrayDims;
use equinox_arith::Encoding;

/// One (output-group, k-chunk) tile of a GEMM lowered onto a geometry.
///
/// Public so analysis passes (notably the `numerics` pass in
/// `equinox-check`) can reconstruct the reduction-chain structure the
/// compiler emits without re-deriving the tiling.
#[derive(Debug, Clone, Copy)]
pub struct Tile {
    /// k-chunk index within the group.
    pub kc: usize,
    /// Useful reduction extent.
    pub k_span: usize,
    /// Useful output extent.
    pub out_span: usize,
    /// Column offset of the output group (sum of earlier groups'
    /// spans).
    pub out_col_offset: usize,
    /// Number of k chunks in this group (for accumulation placement).
    pub k_chunks: usize,
}

impl Tile {
    /// Weight-tile footprint in bytes at `bytes_per_value`.
    pub fn weight_bytes(&self, bpv: u64) -> u64 {
        self.k_span as u64 * self.out_span as u64 * bpv
    }

    /// In-accumulator reduction-chain depth of this tile: how many
    /// mantissa products one 25-bit accumulator absorbs before it
    /// drains. Equal to `k_span` — the cross-chunk fold runs in fp32 on
    /// the SIMD unit after the drain (see the `Elementwise` drains the
    /// tile emitter appends after the last k-chunk) and never deepens
    /// the fixed-point chain.
    pub fn reduction_depth(&self) -> usize {
        self.k_span
    }

    /// Number of intermediate output tiles folded (in fp32, on the SIMD
    /// unit) into this tile's output group after the last k-chunk:
    /// `k_chunks - 1`, i.e. zero when the reduction fits one chunk.
    pub fn fold_count(&self) -> usize {
        self.k_chunks - 1
    }
}

/// The output-tile span for a mode on the given geometry.
pub fn tile_out_span(dims: &ArrayDims, mode: GemmMode) -> usize {
    match mode {
        GemmMode::VectorMatrix => dims.tile_out(),
        GemmMode::WeightBroadcast => dims.n,
    }
}

/// Enumerates the tiles of a `k → out` GEMM in emission order
/// (output-group outer, k-chunk inner).
pub fn tile_list(dims: &ArrayDims, k: usize, out: usize, mode: GemmMode) -> Vec<Tile> {
    let tile_k = dims.tile_k().max(1);
    let tile_out = tile_out_span(dims, mode).max(1);
    let k_chunks = k.div_ceil(tile_k).max(1);
    let out_groups = out.div_ceil(tile_out).max(1);
    let mut tiles = Vec::with_capacity(k_chunks * out_groups);
    for og in 0..out_groups {
        let out_span = (out - og * tile_out).min(tile_out);
        for kc in 0..k_chunks {
            let k_span = (k - kc * tile_k).min(tile_k);
            tiles.push(Tile {
                kc,
                k_span,
                out_span,
                out_col_offset: og * tile_out,
                k_chunks,
            });
        }
    }
    tiles
}

/// Geometry shared by every tile of one GEMM repeat: row count, mode,
/// the input window read by all tiles, the base of the output window,
/// and the encoding's bytes per value.
#[derive(Clone, Copy)]
pub(crate) struct RepeatGeometry {
    pub rows: usize,
    pub mode: GemmMode,
    pub input: Region,
    pub out_base: u64,
    pub bpv: u64,
}

/// Emits the compute instructions for one GEMM repeat: a `MatMulTile`
/// per tile (weights from `weight_regions`, parallel to `tiles`), plus
/// the accumulation SIMD folding each group's `x` intermediate tiles.
/// Outputs land column-group-major at `geom.out_base`.
pub(crate) fn emit_tiles(
    program: &mut Program,
    tiles: &[Tile],
    weight_regions: &[Region],
    geom: RepeatGeometry,
) {
    debug_assert_eq!(tiles.len(), weight_regions.len());
    let RepeatGeometry { rows, mode, input, out_base, bpv } = geom;
    for (tile, &weights) in tiles.iter().zip(weight_regions) {
        let out_region = Region::new(
            out_base + rows as u64 * tile.out_col_offset as u64 * bpv,
            rows as u64 * tile.out_span as u64 * bpv,
        );
        program.push(Instruction::MatMulTile {
            rows,
            k_span: tile.k_span,
            out_span: tile.out_span,
            mode,
            weights,
            input,
            output: out_region,
        });
        if tile.kc + 1 == tile.k_chunks && tile.k_chunks > 1 {
            // Accumulate the x intermediate output tiles (Figure 4).
            program.push(Instruction::Simd {
                kind: SimdOpKind::Elementwise,
                elems: rows * tile.out_span * (tile.k_chunks - 1),
                region: out_region,
            });
        }
    }
}

/// Greedy partition of a tile sequence into waves whose staged weights
/// fit `half_bytes` (every wave holds at least one tile, so a single
/// oversized tile still lowers and is left for `EQX0504` to flag).
pub(crate) fn partition_waves(tiles: &[Tile], half_bytes: u64, bpv: u64) -> Vec<Vec<Tile>> {
    let mut waves: Vec<Vec<Tile>> = Vec::new();
    let mut wave: Vec<Tile> = Vec::new();
    let mut bytes = 0u64;
    for &t in tiles {
        let tb = t.weight_bytes(bpv);
        if !wave.is_empty() && bytes.saturating_add(tb) > half_bytes {
            waves.push(std::mem::take(&mut wave));
            bytes = 0;
        }
        wave.push(t);
        bytes = bytes.saturating_add(tb);
    }
    if !wave.is_empty() {
        waves.push(wave);
    }
    waves
}

/// Dependence regions longer than this many 16-byte words are split
/// with an extra `Sync` so they stream through the 32 KB instruction
/// buffer (2048 words); the margin leaves room for decode slack. A
/// tile multiply occupies three words.
const MAX_REGION_WORDS: usize = 1536;

/// The input-window footprint of a model's first step: vector-matrix
/// models stage the whole `rows × k` activation matrix; lowered
/// convolutions stage one im2col row per sample (the im2col unit
/// expands the activation matrix on the fly, §3.1).
fn first_input_bytes(step: &GemmStep, batch: usize, bpv: u64) -> u64 {
    match step.mode {
        GemmMode::VectorMatrix => {
            (batch * step.rows_per_sample) as u64 * step.k as u64 * bpv
        }
        GemmMode::WeightBroadcast => batch as u64 * step.k as u64 * bpv,
    }
}

/// Compiles an inference program with the paper's encoding and buffer
/// budget (hbfp8 operands, §5 SRAM split). See
/// [`compile_inference_with`].
///
/// # Panics
///
/// Panics if `batch` is zero.
pub fn compile_inference(model: &ModelSpec, dims: &ArrayDims, batch: usize) -> Program {
    compile_inference_with(model, dims, batch, Encoding::Hbfp8, &BufferBudget::paper_default())
}

/// Compiles an inference program: one batch of `batch` requests through
/// every step of `model`, with every operand placed at a concrete
/// buffer region (see the module docs for the placement scheme).
///
/// Output-tile groups are mutually independent, so oversized dependence
/// regions are split into instruction-buffer-sized pieces with extra
/// `Sync` barriers.
///
/// # Panics
///
/// Panics if `batch` is zero.
pub fn compile_inference_with(
    model: &ModelSpec,
    dims: &ArrayDims,
    batch: usize,
    encoding: Encoding,
    budget: &BufferBudget,
) -> Program {
    assert!(batch > 0, "batch must be positive");
    let bpv = encoding.bytes_per_value() as u64;
    let installed = model.weight_params() * bpv <= budget.weight_bytes;
    let mut program = Program::new(format!("{}-inference-b{}", model.name(), batch));
    let mut act = DoubleBuffer::new(0, budget.activation_bytes);
    let first = &model.steps()[0];
    let mut window = Region::new(act.active_base(), first_input_bytes(first, batch, bpv));

    // Installed mode: a prologue epoch loads every weight tile at a
    // bump-assigned offset, plus the first input window.
    let mut installed_regions: Vec<Vec<Vec<Region>>> = Vec::new();
    if installed {
        let mut bump = Bump::new(0);
        for step in model.steps() {
            let groups = if step.weights_shared_across_repeats { 1 } else { step.repeats };
            let mut per_group = Vec::with_capacity(groups);
            for _ in 0..groups {
                let tiles = tile_list(dims, step.k, step.out, step.mode);
                let mut regions = Vec::with_capacity(tiles.len());
                for t in &tiles {
                    let r = bump.alloc(t.weight_bytes(bpv));
                    program.push(Instruction::LoadDram { target: BufferKind::Weight, region: r });
                    regions.push(r);
                }
                per_group.push(regions);
            }
            installed_regions.push(per_group);
        }
        program.push(Instruction::LoadDram { target: BufferKind::Activation, region: window });
        program.push(Instruction::Sync);
    } else {
        // Streaming mode: only the first input window is prologue work;
        // weights stage per repeat below.
        program.push(Instruction::LoadDram { target: BufferKind::Activation, region: window });
        program.push(Instruction::Sync);
    }

    let mut weight_db = DoubleBuffer::new(0, budget.weight_bytes);
    for (si, step) in model.steps().iter().enumerate() {
        let rows = batch * step.rows_per_sample;
        let tiles = tile_list(dims, step.k, step.out, step.mode);
        for rep in 0..step.repeats {
            let out_base = act.spare_base();
            let out_window = Region::new(out_base, rows as u64 * step.out as u64 * bpv);
            if installed {
                let group = if step.weights_shared_across_repeats { 0 } else { rep };
                emit_tiles(
                    &mut program,
                    &tiles,
                    &installed_regions[si][group],
                    RepeatGeometry { rows, mode: step.mode, input: window, out_base, bpv },
                );
            } else {
                // Stage this repeat's tiles into the active weight half
                // (waves when they exceed it), each wave as a load
                // epoch followed by its compute epoch.
                let waves = partition_waves(&tiles, weight_db.half_bytes(), bpv);
                let last_wave = waves.len() - 1;
                for (wi, wave) in waves.iter().enumerate() {
                    let mut bump = Bump::new(weight_db.active_base());
                    let regions: Vec<Region> =
                        wave.iter().map(|t| bump.alloc(t.weight_bytes(bpv))).collect();
                    for &r in &regions {
                        program
                            .push(Instruction::LoadDram { target: BufferKind::Weight, region: r });
                    }
                    program.push(Instruction::Sync);
                    emit_tiles(
                        &mut program,
                        wave,
                        &regions,
                        RepeatGeometry { rows, mode: step.mode, input: window, out_base, bpv },
                    );
                    weight_db.flip();
                    if wi != last_wave {
                        program.push(Instruction::Sync);
                    }
                }
            }
            if step.simd_elems_per_sample > 0 {
                program.push(Instruction::Simd {
                    kind: SimdOpKind::Activation,
                    elems: batch * step.simd_elems_per_sample,
                    region: out_window,
                });
            }
            program.push(Instruction::Sync);
            window = out_window;
            act.flip();
        }
    }
    // Epilogue: drain the final window to DRAM (its own trailing
    // region; a store-only region adds no compute cycles).
    program.push(Instruction::StoreDram { source: BufferKind::Activation, region: window });
    split_oversized_regions(program)
}

/// A cheap upper bound on the instruction count of
/// [`compile_inference_with`] for a model on a geometry — used by sweep
/// drivers to skip lowerings too large to analyze (streaming worst
/// case: every repeat reloads its tiles).
pub fn estimate_inference_instructions(model: &ModelSpec, dims: &ArrayDims, batch: usize) -> u64 {
    let _ = batch;
    let tile_k = dims.tile_k().max(1) as u64;
    model
        .steps()
        .iter()
        .map(|s| {
            let tile_out = tile_out_span(dims, s.mode).max(1) as u64;
            let k_chunks = (s.k as u64).div_ceil(tile_k);
            let out_groups = (s.out as u64).div_ceil(tile_out);
            let tiles = k_chunks * out_groups;
            // loads + matmuls + accumulation/activation SIMD + wave and
            // region-split syncs (both bounded by the tile count).
            s.repeats as u64 * (4 * tiles + out_groups + 8)
        })
        .sum::<u64>()
        + 4
}

/// Inserts `Sync` barriers so no dependence region exceeds the
/// instruction buffer's streaming capacity (counted in encoded words:
/// a tile multiply takes three).
pub(crate) fn split_oversized_regions(program: Program) -> Program {
    let needs_split = {
        let mut region = 0usize;
        let mut oversized = false;
        for i in program.instructions() {
            if matches!(i, Instruction::Sync) {
                region = 0;
            } else {
                region += i.encoded_words();
                if region > MAX_REGION_WORDS {
                    oversized = true;
                    break;
                }
            }
        }
        oversized
    };
    if !needs_split {
        return program;
    }
    let mut out = Program::new(program.name().to_string());
    let mut region = 0usize;
    for &i in program.instructions() {
        if matches!(i, Instruction::Sync) {
            region = 0;
        } else {
            let words = i.encoded_words();
            if region + words > MAX_REGION_WORDS {
                out.push(Instruction::Sync);
                region = 0;
            }
            region += words;
        }
        out.push(i);
    }
    out
}

/// Cycle-level aggregates of one inference batch on a given geometry —
/// the quantities the simulator schedules with.
///
/// The batch executes as a dependence chain of steps. Within a step the
/// SIMD unit overlaps with the MMU except for the last output group's
/// tail; across steps a `Sync` (recurrence or layer dependence) forces
/// the systolic pipeline to refill.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InferenceTiming {
    /// End-to-end cycles to execute one batch.
    pub total_cycles: u64,
    /// Cycles the MMU is occupied by tile instructions.
    pub mmu_busy_cycles: u64,
    /// Of the occupied cycles, the fraction doing useful MACs on a
    /// *full* batch (the rest is array under-utilization from dimension
    /// mismatch). Dummy-row accounting happens at run time by scaling
    /// with the real/padded row ratio.
    pub mmu_utilization: f64,
    /// Pipeline-fill and dependence-stall cycles inside `total_cycles`
    /// (not MMU-occupied, not idle: "Other" in Figure 8).
    pub stall_cycles: u64,
    /// SIMD-unit busy cycles (mostly overlapped with the MMU).
    pub simd_busy_cycles: u64,
    /// Useful MACs for one fully real batch.
    pub total_macs: u64,
    /// MACs attributable to a single request.
    pub macs_per_request: u64,
    /// The batch size the timing was computed for.
    pub batch: usize,
}

impl InferenceTiming {
    /// Derives the timing aggregates from a compiled program.
    ///
    /// SIMD lanes are `m·n` wide (matching the MMU output rate), so a
    /// SIMD instruction over `e` elements takes `⌈e/(m·n)⌉` cycles.
    /// SIMD work overlaps the MMU except for a `1/out_groups` tail,
    /// approximated here as overlap of everything but the final SIMD
    /// instruction segment per sync region.
    pub fn from_program(program: &Program, dims: &ArrayDims, batch: usize) -> Self {
        let simd_lanes = (dims.m * dims.n).max(1) as u64;
        let peak_macs_per_cycle = dims.alu_count();
        let mut total_cycles = 0u64;
        let mut mmu_busy = 0u64;
        let mut simd_busy = 0u64;
        let mut stalls = 0u64;
        let mut macs = 0u64;
        // Per sync region: MMU occupancy accumulates; the SIMD tail
        // (work that cannot overlap because nothing follows it in the
        // region) is the last SIMD instruction's cycles divided by the
        // region's MMU instruction count (progressive drain).
        let mut region_mmu = 0u64;
        let mut region_simd = 0u64;
        let mut region_mmu_instrs = 0u64;
        for instr in program.instructions() {
            match instr {
                Instruction::MatMulTile { .. } => {
                    region_mmu += instr.mmu_occupancy_cycles(dims.m);
                    region_mmu_instrs += 1;
                    macs += instr.macs();
                }
                Instruction::Simd { elems, .. } => {
                    region_simd += (*elems as u64).div_ceil(simd_lanes);
                }
                Instruction::Sync => {
                    let fill = dims.fill_cycles();
                    let simd_tail = if region_mmu_instrs > 0 {
                        region_simd / region_mmu_instrs.max(1)
                    } else {
                        region_simd
                    };
                    total_cycles += region_mmu + fill + simd_tail;
                    stalls += fill + simd_tail;
                    mmu_busy += region_mmu;
                    simd_busy += region_simd;
                    region_mmu = 0;
                    region_simd = 0;
                    region_mmu_instrs = 0;
                }
                _ => {}
            }
        }
        // Trailing region without a final sync.
        if region_mmu > 0 || region_simd > 0 {
            let fill = dims.fill_cycles();
            total_cycles += region_mmu + fill + region_simd;
            stalls += fill + region_simd;
            mmu_busy += region_mmu;
            simd_busy += region_simd;
        }
        let utilization = if mmu_busy == 0 {
            0.0
        } else {
            macs as f64 / (mmu_busy as f64 * peak_macs_per_cycle as f64)
        };
        InferenceTiming {
            total_cycles,
            mmu_busy_cycles: mmu_busy,
            mmu_utilization: utilization.min(1.0),
            stall_cycles: stalls,
            simd_busy_cycles: simd_busy,
            total_macs: macs,
            macs_per_request: macs / batch as u64,
            batch,
        }
    }

    /// Effective throughput of back-to-back batches at `freq_hz`, in
    /// Ops/s (2 ops per MAC).
    pub fn effective_throughput_ops(&self, freq_hz: f64) -> f64 {
        2.0 * self.total_macs as f64 * freq_hz / self.total_cycles as f64
    }

    /// Batch service time at `freq_hz`, seconds.
    pub fn service_time_s(&self, freq_hz: f64) -> f64 {
        self.total_cycles as f64 / freq_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dims() -> ArrayDims {
        ArrayDims { n: 16, w: 4, m: 8 }
    }

    #[test]
    fn small_gemm_single_tile() {
        let model = ModelSpec::new("tiny", vec![GemmStep::dense(32, 64)]);
        let p = compile_inference(&model, &dims(), 4);
        // k=32 ≤ 64 (n·w), out=64 ≤ 128 (m·n): one tile, one SIMD, and
        // the prologue + step syncs.
        assert_eq!(p.mmu_instruction_count(), 1);
        assert_eq!(p.sync_count(), 2);
        assert_eq!(p.total_macs(), 4 * 32 * 64);
    }

    #[test]
    fn tiling_counts() {
        // k=200 → 4 chunks of 64; out=300 → 3 groups of 128.
        let model = ModelSpec::new("t", vec![GemmStep::dense(200, 300)]);
        let p = compile_inference(&model, &dims(), 2);
        assert_eq!(p.mmu_instruction_count(), 12);
        // MACs preserved exactly despite ragged tiles.
        assert_eq!(p.total_macs(), 2 * 200 * 300);
    }

    #[test]
    fn repeats_expand() {
        let model = ModelSpec::new("r", vec![GemmStep::lstm(64, 5)]);
        let p = compile_inference(&model, &dims(), 16);
        assert_eq!(p.sync_count(), 6, "5 step syncs plus the install prologue");
        assert_eq!(p.total_macs(), 16 * 5 * 64 * 256);
    }

    #[test]
    fn operands_are_addressed_and_disjoint() {
        let model = ModelSpec::lstm_2048_25();
        let d = dims();
        let p = compile_inference(&model, &d, 16);
        let mut weight_loads: Vec<Region> = Vec::new();
        for i in p.instructions() {
            match *i {
                Instruction::MatMulTile { weights, input, output, .. } => {
                    assert!(!weights.is_empty(), "weights must be placed");
                    assert!(!input.is_empty(), "input must be placed");
                    assert!(!output.is_empty(), "output must be placed");
                    // Ping/pong: a step never reads where it writes.
                    assert!(!input.overlaps(&output), "{input} vs {output}");
                }
                Instruction::Simd { region, .. } => assert!(!region.is_empty()),
                Instruction::LoadDram { target: BufferKind::Weight, region } => {
                    for w in &weight_loads {
                        assert!(!w.overlaps(&region), "installed tiles are disjoint");
                    }
                    weight_loads.push(region);
                }
                _ => {}
            }
        }
        assert!(!weight_loads.is_empty(), "installed model loads its weights");
    }

    #[test]
    fn installed_weights_fit_budget() {
        let budget = BufferBudget::paper_default();
        let p = compile_inference(&ModelSpec::lstm_2048_25(), &dims(), 16);
        for i in p.instructions() {
            if let Instruction::LoadDram { target: BufferKind::Weight, region } = i {
                assert!(region.end() <= budget.weight_bytes);
            }
        }
    }

    #[test]
    fn oversized_model_streams_weights() {
        // Transformer weights (≈85 MB hbfp8) exceed the 50 MB buffer:
        // every repeat stages its tiles, loads interleave with compute.
        let d = ArrayDims { n: 186, w: 3, m: 3 };
        let p = compile_inference_with(
            &ModelSpec::transformer_encoder_768(),
            &d,
            16,
            Encoding::Hbfp8,
            &BufferBudget::paper_default(),
        );
        let half = BufferBudget::paper_default().weight_bytes / 2;
        let mut weight_load_bytes = 0u64;
        for i in p.instructions() {
            if let Instruction::LoadDram { target: BufferKind::Weight, region } = i {
                assert!(region.end() <= 2 * half, "staged tiles stay in the buffer");
                weight_load_bytes += region.bytes;
            }
        }
        // Streams strictly more weight traffic than the model holds
        // (non-shared repeats reload).
        let params = ModelSpec::transformer_encoder_768().weight_params();
        assert!(weight_load_bytes >= params, "{weight_load_bytes} vs {params}");
        assert_eq!(p.total_macs(), 16 * ModelSpec::transformer_encoder_768().macs_per_sample());
    }

    #[test]
    #[should_panic(expected = "batch must be positive")]
    fn zero_batch_panics() {
        compile_inference(&ModelSpec::lstm_2048_25(), &dims(), 0);
    }

    #[test]
    fn timing_macs_conserved() {
        let model = ModelSpec::lstm_2048_25();
        let d = dims();
        let p = compile_inference(&model, &d, 16);
        let t = InferenceTiming::from_program(&p, &d, 16);
        assert_eq!(t.total_macs, 16 * model.macs_per_sample());
        assert_eq!(t.macs_per_request, model.macs_per_sample());
        assert!(t.total_cycles >= t.mmu_busy_cycles);
        assert!(t.mmu_utilization > 0.5 && t.mmu_utilization <= 1.0);
    }

    #[test]
    fn full_tiles_reach_full_utilization() {
        // k and out exact multiples of the tile sizes, batch = n.
        let model = ModelSpec::new("exact", vec![GemmStep::dense(128, 256)]);
        let d = dims();
        let p = compile_inference(&model, &d, d.n);
        let t = InferenceTiming::from_program(&p, &d, d.n);
        assert!((t.mmu_utilization - 1.0).abs() < 1e-9, "{}", t.mmu_utilization);
    }

    #[test]
    fn ragged_tiles_lower_utilization() {
        let model = ModelSpec::new("ragged", vec![GemmStep::dense(65, 129)]);
        let d = dims();
        let p = compile_inference(&model, &d, d.n);
        let t = InferenceTiming::from_program(&p, &d, d.n);
        assert!(t.mmu_utilization < 0.6, "{}", t.mmu_utilization);
    }

    #[test]
    fn weight_broadcast_divides_rows() {
        let model = ModelSpec::new("conv", vec![GemmStep::conv2d(64, 64, 1, 28, 28, 1)]);
        let d = dims();
        let p = compile_inference(&model, &d, 1);
        let t = InferenceTiming::from_program(&p, &d, 1);
        // 784 rows split over 8 arrays = 98 cycles per tile instruction.
        let occ: u64 = p
            .instructions()
            .iter()
            .map(|i| i.mmu_occupancy_cycles(d.m))
            .sum();
        assert_eq!(t.mmu_busy_cycles, occ);
        assert!(occ < 784 * p.mmu_instruction_count() as u64);
    }

    #[test]
    fn resnet_less_efficient_than_lstm_on_large_arrays() {
        // The Table 2 effect: ResNet-50's shapes map poorly onto a large
        // MMU, so its effective throughput is a fraction of the LSTM's.
        let d = ArrayDims { n: 186, w: 3, m: 3 };
        let lstm = ModelSpec::lstm_2048_25();
        let resnet = ModelSpec::resnet50();
        let pl = compile_inference(&lstm, &d, 186);
        let pr = compile_inference(&resnet, &d, 8);
        let tl = InferenceTiming::from_program(&pl, &d, 186);
        let tr = InferenceTiming::from_program(&pr, &d, 8);
        let el = tl.effective_throughput_ops(610e6);
        let er = tr.effective_throughput_ops(610e6);
        assert!(
            er < 0.45 * el,
            "resnet {:.1} TOp/s should be well under half of lstm {:.1} TOp/s",
            er / 1e12,
            el / 1e12
        );
    }

    #[test]
    fn lstm_500us_config_service_time_matches_analytical() {
        // The Equinox_500µs-like geometry: n=186, w=3, m=3 @ 610 MHz has a
        // batch service time in the 400–600 µs range.
        let d = ArrayDims { n: 186, w: 3, m: 3 };
        let p = compile_inference(&ModelSpec::lstm_2048_25(), &d, 186);
        let t = InferenceTiming::from_program(&p, &d, 186);
        let svc_us = t.service_time_s(610e6) * 1e6;
        assert!(svc_us > 350.0 && svc_us < 650.0, "{svc_us}");
    }

    #[test]
    fn effective_throughput_below_peak() {
        let d = dims();
        let p = compile_inference(&ModelSpec::lstm_2048_25(), &d, d.n);
        let t = InferenceTiming::from_program(&p, &d, d.n);
        let peak = 2.0 * d.alu_count() as f64 * 1e9;
        assert!(t.effective_throughput_ops(1e9) < peak);
        assert!(t.effective_throughput_ops(1e9) > 0.3 * peak);
    }

    #[test]
    fn regions_respect_word_capacity() {
        // No dependence region may exceed the 2048-word instruction
        // buffer, counting a tile multiply as three words.
        for (model, batch) in [
            (ModelSpec::lstm_2048_25(), 16),
            (ModelSpec::resnet50(), 8),
        ] {
            let p = compile_inference(&model, &dims(), batch);
            let mut words = 0usize;
            for i in p.instructions() {
                if matches!(i, Instruction::Sync) {
                    words = 0;
                } else {
                    words += i.encoded_words();
                }
                assert!(words <= 2048, "{}: region of {words} words", model.name());
            }
        }
    }

    #[test]
    fn tile_metadata_matches_emitted_instructions() {
        // Every emitted MatMulTile's reduction depth equals some tile's
        // k_span, is capped by the geometry's tile_k, and the emitted
        // fold SIMDs match each tile list's fold counts.
        let d = dims();
        let model = ModelSpec::new("t", vec![GemmStep::dense(200, 300)]);
        let tiles = tile_list(&d, 200, 300, GemmMode::VectorMatrix);
        let spans: Vec<usize> = tiles.iter().map(|t| t.reduction_depth()).collect();
        let p = compile_inference(&model, &d, 2);
        for i in p.instructions() {
            if let Some(depth) = i.reduction_depth() {
                assert!(depth <= d.tile_k());
                assert!(spans.contains(&depth), "unknown depth {depth}");
            }
        }
        // k=200 over tile_k=64 → 4 chunks: three intermediate tiles fold.
        assert!(tiles.iter().all(|t| t.fold_count() == 3));
        assert_eq!(
            p.instructions()
                .iter()
                .filter(|i| matches!(i, Instruction::Simd { kind: SimdOpKind::Elementwise, .. }))
                .count(),
            3,
            "one fold per output group"
        );
    }

    #[test]
    fn estimate_bounds_actual_size() {
        let d = dims();
        for (model, batch) in [
            (ModelSpec::lstm_2048_25(), 16),
            (ModelSpec::resnet50(), 8),
            (ModelSpec::mlp_2048x5(), 16),
        ] {
            let est = estimate_inference_instructions(&model, &d, batch);
            let p = compile_inference(&model, &d, batch);
            assert!(
                est >= p.len() as u64,
                "{}: estimate {est} below actual {}",
                model.name(),
                p.len()
            );
        }
    }
}
