//! The tiling compiler: lowering models onto an MMU geometry.
//!
//! Matrix multiplications are divided into tiles as in the paper's
//! Figure 4: the reduction dimension splits into chunks of `n·w`, and
//! the output dimension into groups of `m·n` (vector-matrix mode) or `n`
//! (weight-broadcast mode, where all arrays hold the same weight tile
//! and split the activation rows). Each `MatMulTile` instruction
//! addresses one activation tile and `m` weight tiles; `x` further
//! SIMD instructions add the intermediate output tiles.

use crate::instruction::{Instruction, SimdOpKind};
use crate::layers::{GemmMode, GemmStep};
use crate::models::ModelSpec;
use crate::program::Program;
use crate::ArrayDims;

/// Lowers one GEMM step (already expanded to a single repeat) into
/// instructions, appending to `program`. `rows` is the total activation
/// rows (batch × rows-per-sample).
fn lower_step(program: &mut Program, step: &GemmStep, dims: &ArrayDims, rows: usize) {
    let tile_k = dims.tile_k();
    let tile_out = match step.mode {
        GemmMode::VectorMatrix => dims.tile_out(),
        GemmMode::WeightBroadcast => dims.n,
    };
    let k_chunks = step.k.div_ceil(tile_k);
    let out_groups = step.out.div_ceil(tile_out);
    for og in 0..out_groups {
        let out_span = (step.out - og * tile_out).min(tile_out);
        for kc in 0..k_chunks {
            let k_span = (step.k - kc * tile_k).min(tile_k);
            program.push(Instruction::MatMulTile {
                rows,
                k_span,
                out_span,
                mode: step.mode,
            });
        }
        if k_chunks > 1 {
            // Accumulate the x intermediate output tiles (Figure 4).
            program.push(Instruction::Simd {
                kind: SimdOpKind::Elementwise,
                elems: rows * out_span * (k_chunks - 1),
            });
        }
    }
}

/// Dependence regions longer than this are split with an extra `Sync`
/// so they stream through the 32 KB instruction buffer (2048 words);
/// the margin leaves room for the region's SIMD instructions.
const MAX_REGION_INSTRUCTIONS: usize = 1536;

/// Compiles an inference program: one batch of `batch` requests through
/// every step of `model`.
///
/// Output-tile groups are mutually independent, so oversized steps
/// (e.g. mode-2 convolutions on an `n = 1` geometry) are split into
/// buffer-sized regions at group boundaries.
///
/// # Panics
///
/// Panics if `batch` is zero.
pub fn compile_inference(model: &ModelSpec, dims: &ArrayDims, batch: usize) -> Program {
    assert!(batch > 0, "batch must be positive");
    let mut program = Program::new(format!("{}-inference-b{}", model.name(), batch));
    for step in model.steps() {
        for _ in 0..step.repeats {
            let rows = batch * step.rows_per_sample;
            lower_step(&mut program, step, dims, rows);
            if step.simd_elems_per_sample > 0 {
                program.push(Instruction::Simd {
                    kind: SimdOpKind::Activation,
                    elems: batch * step.simd_elems_per_sample,
                });
            }
            program.push(Instruction::Sync);
        }
    }
    split_oversized_regions(program)
}

/// Inserts `Sync` barriers so no dependence region exceeds the
/// instruction buffer's streaming capacity.
fn split_oversized_regions(program: Program) -> Program {
    let needs_split = {
        let mut region = 0usize;
        let mut oversized = false;
        for i in program.instructions() {
            if matches!(i, Instruction::Sync) {
                region = 0;
            } else {
                region += 1;
                if region > MAX_REGION_INSTRUCTIONS {
                    oversized = true;
                    break;
                }
            }
        }
        oversized
    };
    if !needs_split {
        return program;
    }
    let mut out = Program::new(program.name().to_string());
    let mut region = 0usize;
    for &i in program.instructions() {
        if matches!(i, Instruction::Sync) {
            region = 0;
        } else {
            if region >= MAX_REGION_INSTRUCTIONS {
                out.push(Instruction::Sync);
                region = 0;
            }
            region += 1;
        }
        out.push(i);
    }
    out
}

/// Cycle-level aggregates of one inference batch on a given geometry —
/// the quantities the simulator schedules with.
///
/// The batch executes as a dependence chain of steps. Within a step the
/// SIMD unit overlaps with the MMU except for the last output group's
/// tail; across steps a `Sync` (recurrence or layer dependence) forces
/// the systolic pipeline to refill.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InferenceTiming {
    /// End-to-end cycles to execute one batch.
    pub total_cycles: u64,
    /// Cycles the MMU is occupied by tile instructions.
    pub mmu_busy_cycles: u64,
    /// Of the occupied cycles, the fraction doing useful MACs on a
    /// *full* batch (the rest is array under-utilization from dimension
    /// mismatch). Dummy-row accounting happens at run time by scaling
    /// with the real/padded row ratio.
    pub mmu_utilization: f64,
    /// Pipeline-fill and dependence-stall cycles inside `total_cycles`
    /// (not MMU-occupied, not idle: "Other" in Figure 8).
    pub stall_cycles: u64,
    /// SIMD-unit busy cycles (mostly overlapped with the MMU).
    pub simd_busy_cycles: u64,
    /// Useful MACs for one fully real batch.
    pub total_macs: u64,
    /// MACs attributable to a single request.
    pub macs_per_request: u64,
    /// The batch size the timing was computed for.
    pub batch: usize,
}

impl InferenceTiming {
    /// Derives the timing aggregates from a compiled program.
    ///
    /// SIMD lanes are `m·n` wide (matching the MMU output rate), so a
    /// SIMD instruction over `e` elements takes `⌈e/(m·n)⌉` cycles.
    /// SIMD work overlaps the MMU except for a `1/out_groups` tail,
    /// approximated here as overlap of everything but the final SIMD
    /// instruction segment per sync region.
    pub fn from_program(program: &Program, dims: &ArrayDims, batch: usize) -> Self {
        let simd_lanes = (dims.m * dims.n).max(1) as u64;
        let peak_macs_per_cycle = dims.alu_count();
        let mut total_cycles = 0u64;
        let mut mmu_busy = 0u64;
        let mut simd_busy = 0u64;
        let mut stalls = 0u64;
        let mut macs = 0u64;
        // Per sync region: MMU occupancy accumulates; the SIMD tail
        // (work that cannot overlap because nothing follows it in the
        // region) is the last SIMD instruction's cycles divided by the
        // region's MMU instruction count (progressive drain).
        let mut region_mmu = 0u64;
        let mut region_simd = 0u64;
        let mut region_mmu_instrs = 0u64;
        for instr in program.instructions() {
            match instr {
                Instruction::MatMulTile { .. } => {
                    region_mmu += instr.mmu_occupancy_cycles(dims.m);
                    region_mmu_instrs += 1;
                    macs += instr.macs();
                }
                Instruction::Simd { elems, .. } => {
                    region_simd += (*elems as u64).div_ceil(simd_lanes);
                }
                Instruction::Sync => {
                    let fill = dims.fill_cycles();
                    let simd_tail = if region_mmu_instrs > 0 {
                        region_simd / region_mmu_instrs.max(1)
                    } else {
                        region_simd
                    };
                    total_cycles += region_mmu + fill + simd_tail;
                    stalls += fill + simd_tail;
                    mmu_busy += region_mmu;
                    simd_busy += region_simd;
                    region_mmu = 0;
                    region_simd = 0;
                    region_mmu_instrs = 0;
                }
                _ => {}
            }
        }
        // Trailing region without a final sync.
        if region_mmu > 0 || region_simd > 0 {
            let fill = dims.fill_cycles();
            total_cycles += region_mmu + fill + region_simd;
            stalls += fill + region_simd;
            mmu_busy += region_mmu;
            simd_busy += region_simd;
        }
        let utilization = if mmu_busy == 0 {
            0.0
        } else {
            macs as f64 / (mmu_busy as f64 * peak_macs_per_cycle as f64)
        };
        InferenceTiming {
            total_cycles,
            mmu_busy_cycles: mmu_busy,
            mmu_utilization: utilization.min(1.0),
            stall_cycles: stalls,
            simd_busy_cycles: simd_busy,
            total_macs: macs,
            macs_per_request: macs / batch as u64,
            batch,
        }
    }

    /// Effective throughput of back-to-back batches at `freq_hz`, in
    /// Ops/s (2 ops per MAC).
    pub fn effective_throughput_ops(&self, freq_hz: f64) -> f64 {
        2.0 * self.total_macs as f64 * freq_hz / self.total_cycles as f64
    }

    /// Batch service time at `freq_hz`, seconds.
    pub fn service_time_s(&self, freq_hz: f64) -> f64 {
        self.total_cycles as f64 / freq_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dims() -> ArrayDims {
        ArrayDims { n: 16, w: 4, m: 8 }
    }

    #[test]
    fn small_gemm_single_tile() {
        let model = ModelSpec::new("tiny", vec![GemmStep::dense(32, 64)]);
        let p = compile_inference(&model, &dims(), 4);
        // k=32 ≤ 64 (n·w), out=64 ≤ 128 (m·n): one tile, one SIMD, one sync.
        assert_eq!(p.mmu_instruction_count(), 1);
        assert_eq!(p.sync_count(), 1);
        assert_eq!(p.total_macs(), 4 * 32 * 64);
    }

    #[test]
    fn tiling_counts() {
        // k=200 → 4 chunks of 64; out=300 → 3 groups of 128.
        let model = ModelSpec::new("t", vec![GemmStep::dense(200, 300)]);
        let p = compile_inference(&model, &dims(), 2);
        assert_eq!(p.mmu_instruction_count(), 12);
        // MACs preserved exactly despite ragged tiles.
        assert_eq!(p.total_macs(), 2 * 200 * 300);
    }

    #[test]
    fn repeats_expand() {
        let model = ModelSpec::new("r", vec![GemmStep::lstm(64, 5)]);
        let p = compile_inference(&model, &dims(), 16);
        assert_eq!(p.sync_count(), 5);
        assert_eq!(p.total_macs(), 16 * 5 * 64 * 256);
    }

    #[test]
    #[should_panic(expected = "batch must be positive")]
    fn zero_batch_panics() {
        compile_inference(&ModelSpec::lstm_2048_25(), &dims(), 0);
    }

    #[test]
    fn timing_macs_conserved() {
        let model = ModelSpec::lstm_2048_25();
        let d = dims();
        let p = compile_inference(&model, &d, 16);
        let t = InferenceTiming::from_program(&p, &d, 16);
        assert_eq!(t.total_macs, 16 * model.macs_per_sample());
        assert_eq!(t.macs_per_request, model.macs_per_sample());
        assert!(t.total_cycles >= t.mmu_busy_cycles);
        assert!(t.mmu_utilization > 0.5 && t.mmu_utilization <= 1.0);
    }

    #[test]
    fn full_tiles_reach_full_utilization() {
        // k and out exact multiples of the tile sizes, batch = n.
        let model = ModelSpec::new("exact", vec![GemmStep::dense(128, 256)]);
        let d = dims();
        let p = compile_inference(&model, &d, d.n);
        let t = InferenceTiming::from_program(&p, &d, d.n);
        assert!((t.mmu_utilization - 1.0).abs() < 1e-9, "{}", t.mmu_utilization);
    }

    #[test]
    fn ragged_tiles_lower_utilization() {
        let model = ModelSpec::new("ragged", vec![GemmStep::dense(65, 129)]);
        let d = dims();
        let p = compile_inference(&model, &d, d.n);
        let t = InferenceTiming::from_program(&p, &d, d.n);
        assert!(t.mmu_utilization < 0.6, "{}", t.mmu_utilization);
    }

    #[test]
    fn weight_broadcast_divides_rows() {
        let model = ModelSpec::new("conv", vec![GemmStep::conv2d(64, 64, 1, 28, 28, 1)]);
        let d = dims();
        let p = compile_inference(&model, &d, 1);
        let t = InferenceTiming::from_program(&p, &d, 1);
        // 784 rows split over 8 arrays = 98 cycles per tile instruction.
        let occ: u64 = p
            .instructions()
            .iter()
            .map(|i| i.mmu_occupancy_cycles(d.m))
            .sum();
        assert_eq!(t.mmu_busy_cycles, occ);
        assert!(occ < 784 * p.mmu_instruction_count() as u64);
    }

    #[test]
    fn resnet_less_efficient_than_lstm_on_large_arrays() {
        // The Table 2 effect: ResNet-50's shapes map poorly onto a large
        // MMU, so its effective throughput is a fraction of the LSTM's.
        let d = ArrayDims { n: 186, w: 3, m: 3 };
        let lstm = ModelSpec::lstm_2048_25();
        let resnet = ModelSpec::resnet50();
        let pl = compile_inference(&lstm, &d, 186);
        let pr = compile_inference(&resnet, &d, 8);
        let tl = InferenceTiming::from_program(&pl, &d, 186);
        let tr = InferenceTiming::from_program(&pr, &d, 8);
        let el = tl.effective_throughput_ops(610e6);
        let er = tr.effective_throughput_ops(610e6);
        assert!(
            er < 0.45 * el,
            "resnet {:.1} TOp/s should be well under half of lstm {:.1} TOp/s",
            er / 1e12,
            el / 1e12
        );
    }

    #[test]
    fn lstm_500us_config_service_time_matches_analytical() {
        // The Equinox_500µs-like geometry: n=186, w=3, m=3 @ 610 MHz has a
        // batch service time in the 400–600 µs range.
        let d = ArrayDims { n: 186, w: 3, m: 3 };
        let p = compile_inference(&ModelSpec::lstm_2048_25(), &d, 186);
        let t = InferenceTiming::from_program(&p, &d, 186);
        let svc_us = t.service_time_s(610e6) * 1e6;
        assert!(svc_us > 350.0 && svc_us < 650.0, "{svc_us}");
    }

    #[test]
    fn effective_throughput_below_peak() {
        let d = dims();
        let p = compile_inference(&ModelSpec::lstm_2048_25(), &d, d.n);
        let t = InferenceTiming::from_program(&p, &d, d.n);
        let peak = 2.0 * d.alu_count() as f64 * 1e9;
        assert!(t.effective_throughput_ops(1e9) < peak);
        assert!(t.effective_throughput_ops(1e9) > 0.3 * peak);
    }
}
