//! Lowering of training iterations (§3.2) and their DRAM traffic.
//!
//! Training piggybacks as a best-effort context: a synchronous-SGD
//! iteration is one forward pass, one backward pass (activation
//! gradients `dX` and weight gradients `dW`), an optimizer update, and a
//! parameter-server exchange. Because the training footprint is a few
//! GBs, operands stream from DRAM and on-chip buffers only stage them
//! right before computation — training is fundamentally bound by
//! off-chip bandwidth (§2.2).

use crate::layers::GemmMode;
use crate::models::ModelSpec;
use crate::ArrayDims;
use equinox_arith::Encoding;

/// Parameters of the training service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingSetup {
    /// Mini-batch size (the paper models 128).
    pub batch: usize,
    /// Datapath encoding for streamed operands.
    pub encoding: Encoding,
    /// Multiplier on raw component traffic accounting for DRAM row
    /// activation on strided tile accesses, transfer granularity,
    /// refresh, and staging double-buffer duplication. Calibrated so the
    /// LSTM training intensity matches the paper's HBM-saturated maximum
    /// (≈105 TOp/s at 1 TB/s).
    pub dram_inefficiency_factor: f64,
}

impl TrainingSetup {
    /// The paper's configuration: batch 128, hbfp8 operands.
    pub fn paper_default() -> Self {
        TrainingSetup {
            batch: 128,
            encoding: Encoding::Hbfp8,
            dram_inefficiency_factor: 3.5,
        }
    }
}

impl Default for TrainingSetup {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Occupancy cycles of one GEMM tiled onto `dims` (`rows × k → out`).
fn gemm_occupancy(dims: &ArrayDims, rows: usize, k: usize, out: usize, mode: GemmMode) -> u64 {
    let tile_k = dims.tile_k();
    let tile_out = match mode {
        GemmMode::VectorMatrix => dims.tile_out(),
        GemmMode::WeightBroadcast => dims.n,
    };
    let row_cycles = match mode {
        GemmMode::VectorMatrix => rows as u64,
        GemmMode::WeightBroadcast => rows.div_ceil(dims.m.max(1)) as u64,
    };
    (k.div_ceil(tile_k) as u64) * (out.div_ceil(tile_out) as u64) * row_cycles
}

/// Aggregate cost of one training iteration on a given geometry — the
/// quantities the simulator's training context streams from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingProfile {
    /// Useful MACs per iteration (forward + dX + dW).
    pub iteration_macs: u64,
    /// MMU occupancy cycles per iteration.
    pub iteration_mmu_cycles: u64,
    /// DRAM bytes moved per iteration (weights both passes, gradients,
    /// optimizer state, staged activations, parameter-server exchange),
    /// including the calibrated inefficiency factor.
    pub iteration_dram_bytes: u64,
    /// SIMD cycles per iteration (derivatives, loss, weight update).
    pub iteration_simd_cycles: u64,
    /// Mini-batch size.
    pub batch: usize,
}

impl TrainingProfile {
    /// Profiles one synchronous-SGD iteration of `model` on `dims`.
    ///
    /// Backward-pass lowering: `dX = dY·Wᵀ` keeps the batch on the rows
    /// (vector-matrix mode); `dW = Xᵀ·dY` has tall `k`-row activations
    /// and a shallow `batch`-deep reduction, so it maps in
    /// weight-broadcast mode (the paper's mode 2).
    ///
    /// # Panics
    ///
    /// Panics if `setup.batch` is zero.
    pub fn profile(model: &ModelSpec, dims: &ArrayDims, setup: &TrainingSetup) -> Self {
        assert!(setup.batch > 0, "training batch must be positive");
        let b = setup.batch;
        let simd_lanes = (dims.m * dims.n).max(1) as u64;
        let mut macs = 0u64;
        let mut mmu_cycles = 0u64;
        let mut simd_cycles = 0u64;
        for step in model.steps() {
            let reps = step.repeats as u64;
            let rows = b * step.rows_per_sample;
            // Forward: rows × k → out.
            mmu_cycles += reps * gemm_occupancy(dims, rows, step.k, step.out, step.mode);
            // dX: rows × out → k.
            mmu_cycles += reps * gemm_occupancy(dims, rows, step.out, step.k, step.mode);
            // dW: k rows × batch-deep reduction → out (tall: mode 2).
            mmu_cycles += reps
                * gemm_occupancy(
                    dims,
                    step.k * step.rows_per_sample.min(b),
                    b,
                    step.out,
                    GemmMode::WeightBroadcast,
                );
            macs += 3 * reps * rows as u64 * step.k as u64 * step.out as u64;
            // SIMD: forward activations, their derivatives, and the loss
            // tail; plus the optimizer update over the step's weights.
            let act = reps * b as u64 * step.simd_elems_per_sample as u64;
            simd_cycles += (2 * act).div_ceil(simd_lanes);
            simd_cycles += step.weight_params().div_ceil(simd_lanes);
        }
        let dram = Self::iteration_traffic_bytes(model, setup);
        TrainingProfile {
            iteration_macs: macs,
            iteration_mmu_cycles: mmu_cycles,
            iteration_dram_bytes: dram,
            iteration_simd_cycles: simd_cycles,
            batch: b,
        }
    }

    /// Raw + calibrated DRAM traffic of one iteration, bytes.
    ///
    /// Components per iteration:
    /// * weights: streamed for forward and backward (encoding width),
    ///   fp32 gradients written, momentum + fp32 master copy
    ///   read/written, re-quantized weights written;
    /// * activations: written in fp32 during forward, re-read during
    ///   backward, activation gradients written and re-read;
    /// * parameter server: fp32 gradients out, new quantized model in.
    pub fn iteration_traffic_bytes(model: &ModelSpec, setup: &TrainingSetup) -> u64 {
        let enc = setup.encoding.bytes_per_value() as u64;
        let params = model.weight_params();
        let act = model.activation_elems_per_sample() * setup.batch as u64;
        let weight_bytes = params * (2 * enc + 4 + 8 + 8 + enc);
        let act_bytes = act * 16; // fp32: write, read, grad write, grad read
        let sync_bytes = params * (4 + enc);
        let raw = weight_bytes + act_bytes + sync_bytes;
        (raw as f64 * setup.dram_inefficiency_factor) as u64
    }

    /// Arithmetic intensity, Ops per DRAM byte.
    pub fn intensity_ops_per_byte(&self) -> f64 {
        2.0 * self.iteration_macs as f64 / self.iteration_dram_bytes as f64
    }

    /// Training throughput if DRAM bandwidth is the only limit, Ops/s.
    pub fn dram_limited_ops(&self, bandwidth_bytes_per_s: f64) -> f64 {
        self.intensity_ops_per_byte() * bandwidth_bytes_per_s
    }

    /// Training throughput if the MMU is the only limit, Ops/s.
    pub fn mmu_limited_ops(&self, freq_hz: f64) -> f64 {
        2.0 * self.iteration_macs as f64 * freq_hz / self.iteration_mmu_cycles as f64
    }

    /// The maximum achievable training throughput — what a dedicated
    /// training accelerator saturating both the compute and the DRAM
    /// bandwidth would reach, Ops/s.
    pub fn max_achievable_ops(&self, freq_hz: f64, bandwidth_bytes_per_s: f64) -> f64 {
        self.dram_limited_ops(bandwidth_bytes_per_s)
            .min(self.mmu_limited_ops(freq_hz))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dims_500us() -> ArrayDims {
        ArrayDims { n: 186, w: 3, m: 3 }
    }

    #[test]
    fn lstm_intensity_matches_calibration_target() {
        let p = TrainingProfile::profile(
            &ModelSpec::lstm_2048_25(),
            &dims_500us(),
            &TrainingSetup::paper_default(),
        );
        // HBM-saturated max ≈ 100–115 TOp/s at 1 TB/s (the paper's
        // Figure 9 plateau for Equinox_none).
        let dram_tops = p.dram_limited_ops(1e12) / 1e12;
        assert!(dram_tops > 90.0 && dram_tops < 125.0, "{dram_tops}");
    }

    #[test]
    fn lstm_training_is_dram_bound_on_500us_config() {
        let p = TrainingProfile::profile(
            &ModelSpec::lstm_2048_25(),
            &dims_500us(),
            &TrainingSetup::paper_default(),
        );
        // The MMU could go much faster than DRAM lets it (§2.2).
        assert!(p.mmu_limited_ops(610e6) > 1.5 * p.dram_limited_ops(1e12));
        assert_eq!(
            p.max_achievable_ops(610e6, 1e12),
            p.dram_limited_ops(1e12)
        );
    }

    #[test]
    fn iteration_macs_three_passes() {
        let model = ModelSpec::lstm_2048_25();
        let p = TrainingProfile::profile(
            &model,
            &dims_500us(),
            &TrainingSetup::paper_default(),
        );
        assert_eq!(p.iteration_macs, 3 * 128 * model.macs_per_sample());
    }

    #[test]
    fn traffic_scales_with_inefficiency_factor() {
        let model = ModelSpec::lstm_2048_25();
        let base = TrainingSetup { dram_inefficiency_factor: 1.0, ..Default::default() };
        let double = TrainingSetup { dram_inefficiency_factor: 2.0, ..Default::default() };
        let b1 = TrainingProfile::iteration_traffic_bytes(&model, &base);
        let b2 = TrainingProfile::iteration_traffic_bytes(&model, &double);
        assert!((b2 as f64 / b1 as f64 - 2.0).abs() < 0.01);
    }

    #[test]
    fn footprint_is_a_few_gb() {
        // §2.2: training footprints are in the range of a few GBs.
        let model = ModelSpec::lstm_2048_25();
        let bytes = TrainingProfile::iteration_traffic_bytes(
            &model,
            &TrainingSetup::paper_default(),
        );
        let gb = bytes as f64 / 1e9;
        assert!(gb > 1.0 && gb < 10.0, "{gb}");
    }

    #[test]
    fn gru_training_less_dram_bound_than_lstm() {
        // GRU's 1500 steps reuse the same weights, raising intensity.
        let setup = TrainingSetup::paper_default();
        let lstm = TrainingProfile::profile(&ModelSpec::lstm_2048_25(), &dims_500us(), &setup);
        let gru = TrainingProfile::profile(&ModelSpec::gru_2816_1500(), &dims_500us(), &setup);
        assert!(gru.intensity_ops_per_byte() > lstm.intensity_ops_per_byte());
    }

    #[test]
    #[should_panic(expected = "training batch must be positive")]
    fn zero_batch_panics() {
        let setup = TrainingSetup { batch: 0, ..Default::default() };
        TrainingProfile::profile(&ModelSpec::lstm_2048_25(), &dims_500us(), &setup);
    }

    #[test]
    fn mmu_utilization_reasonable() {
        // Training keeps the arrays reasonably busy when it runs: the
        // per-iteration effective rate is within [20%, 100%] of peak.
        let d = dims_500us();
        let p = TrainingProfile::profile(
            &ModelSpec::lstm_2048_25(),
            &d,
            &TrainingSetup::paper_default(),
        );
        let peak = 2.0 * d.alu_count() as f64 * 610e6;
        let eff = p.mmu_limited_ops(610e6);
        assert!(eff > 0.2 * peak && eff <= peak, "eff {eff} peak {peak}");
    }
}
