//! Lowering of training iterations (§3.2) and their DRAM traffic.
//!
//! Training piggybacks as a best-effort context: a synchronous-SGD
//! iteration is one forward pass, one backward pass (activation
//! gradients `dX` and weight gradients `dW`), an optimizer update, and a
//! parameter-server exchange. Because the training footprint is a few
//! GBs, operands stream from DRAM and on-chip buffers only stage them
//! right before computation — training is fundamentally bound by
//! off-chip bandwidth (§2.2).

use crate::alloc::{Bump, DoubleBuffer};
use crate::instruction::{BufferKind, Instruction, Region, SimdOpKind};
use crate::layers::GemmMode;
use crate::lower::{
    emit_tiles, partition_waves, split_oversized_regions, tile_list, RepeatGeometry,
};
use crate::models::ModelSpec;
use crate::program::Program;
use crate::validate::BufferBudget;
use crate::ArrayDims;
use equinox_arith::Encoding;

/// Parameters of the training service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingSetup {
    /// Mini-batch size (the paper models 128).
    pub batch: usize,
    /// Datapath encoding for streamed operands.
    pub encoding: Encoding,
    /// Multiplier on raw component traffic accounting for DRAM row
    /// activation on strided tile accesses, transfer granularity,
    /// refresh, and staging double-buffer duplication. Calibrated so the
    /// LSTM training intensity matches the paper's HBM-saturated maximum
    /// (≈105 TOp/s at 1 TB/s).
    pub dram_inefficiency_factor: f64,
}

impl TrainingSetup {
    /// The paper's configuration: batch 128, hbfp8 operands.
    pub fn paper_default() -> Self {
        TrainingSetup {
            batch: 128,
            encoding: Encoding::Hbfp8,
            dram_inefficiency_factor: 3.5,
        }
    }
}

impl Default for TrainingSetup {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Occupancy cycles of one GEMM tiled onto `dims` (`rows × k → out`).
fn gemm_occupancy(dims: &ArrayDims, rows: usize, k: usize, out: usize, mode: GemmMode) -> u64 {
    let tile_k = dims.tile_k();
    let tile_out = match mode {
        GemmMode::VectorMatrix => dims.tile_out(),
        GemmMode::WeightBroadcast => dims.n,
    };
    let row_cycles = match mode {
        GemmMode::VectorMatrix => rows as u64,
        GemmMode::WeightBroadcast => rows.div_ceil(dims.m.max(1)) as u64,
    };
    (k.div_ceil(tile_k) as u64) * (out.div_ceil(tile_out) as u64) * row_cycles
}

/// Aggregate cost of one training iteration on a given geometry — the
/// quantities the simulator's training context streams from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingProfile {
    /// Useful MACs per iteration (forward + dX + dW).
    pub iteration_macs: u64,
    /// MMU occupancy cycles per iteration.
    pub iteration_mmu_cycles: u64,
    /// DRAM bytes moved per iteration (weights both passes, gradients,
    /// optimizer state, staged activations, parameter-server exchange),
    /// including the calibrated inefficiency factor.
    pub iteration_dram_bytes: u64,
    /// SIMD cycles per iteration (derivatives, loss, weight update).
    pub iteration_simd_cycles: u64,
    /// Mini-batch size.
    pub batch: usize,
}

impl TrainingProfile {
    /// Profiles one synchronous-SGD iteration of `model` on `dims`.
    ///
    /// Backward-pass lowering: `dX = dY·Wᵀ` keeps the batch on the rows
    /// (vector-matrix mode); `dW = Xᵀ·dY` has tall `k`-row activations
    /// and a shallow `batch`-deep reduction, so it maps in
    /// weight-broadcast mode (the paper's mode 2).
    ///
    /// # Panics
    ///
    /// Panics if `setup.batch` is zero.
    pub fn profile(model: &ModelSpec, dims: &ArrayDims, setup: &TrainingSetup) -> Self {
        assert!(setup.batch > 0, "training batch must be positive");
        let b = setup.batch;
        let simd_lanes = (dims.m * dims.n).max(1) as u64;
        let mut macs = 0u64;
        let mut mmu_cycles = 0u64;
        let mut simd_cycles = 0u64;
        for step in model.steps() {
            let reps = step.repeats as u64;
            let rows = b * step.rows_per_sample;
            // Forward: rows × k → out.
            mmu_cycles += reps * gemm_occupancy(dims, rows, step.k, step.out, step.mode);
            // dX: rows × out → k.
            mmu_cycles += reps * gemm_occupancy(dims, rows, step.out, step.k, step.mode);
            // dW: k rows × batch-deep reduction → out (tall: mode 2).
            mmu_cycles += reps
                * gemm_occupancy(
                    dims,
                    step.k * step.rows_per_sample.min(b),
                    b,
                    step.out,
                    GemmMode::WeightBroadcast,
                );
            macs += 3 * reps * rows as u64 * step.k as u64 * step.out as u64;
            // SIMD: forward activations, their derivatives, and the loss
            // tail; plus the optimizer update over the step's weights.
            let act = reps * b as u64 * step.simd_elems_per_sample as u64;
            simd_cycles += (2 * act).div_ceil(simd_lanes);
            simd_cycles += step.weight_params().div_ceil(simd_lanes);
        }
        let dram = Self::iteration_traffic_bytes(model, setup);
        TrainingProfile {
            iteration_macs: macs,
            iteration_mmu_cycles: mmu_cycles,
            iteration_dram_bytes: dram,
            iteration_simd_cycles: simd_cycles,
            batch: b,
        }
    }

    /// Raw + calibrated DRAM traffic of one iteration, bytes.
    ///
    /// Components per iteration:
    /// * weights: streamed for forward and backward (encoding width),
    ///   fp32 gradients written, momentum + fp32 master copy
    ///   read/written, re-quantized weights written;
    /// * activations: written in fp32 during forward, re-read during
    ///   backward, activation gradients written and re-read;
    /// * parameter server: fp32 gradients out, new quantized model in.
    pub fn iteration_traffic_bytes(model: &ModelSpec, setup: &TrainingSetup) -> u64 {
        let enc = setup.encoding.bytes_per_value() as u64;
        let params = model.weight_params();
        let act = model.activation_elems_per_sample() * setup.batch as u64;
        let weight_bytes = params * (2 * enc + 4 + 8 + 8 + enc);
        let act_bytes = act * 16; // fp32: write, read, grad write, grad read
        let sync_bytes = params * (4 + enc);
        let raw = weight_bytes + act_bytes + sync_bytes;
        (raw as f64 * setup.dram_inefficiency_factor) as u64
    }

    /// Arithmetic intensity, Ops per DRAM byte.
    pub fn intensity_ops_per_byte(&self) -> f64 {
        2.0 * self.iteration_macs as f64 / self.iteration_dram_bytes as f64
    }

    /// Training throughput if DRAM bandwidth is the only limit, Ops/s.
    pub fn dram_limited_ops(&self, bandwidth_bytes_per_s: f64) -> f64 {
        self.intensity_ops_per_byte() * bandwidth_bytes_per_s
    }

    /// Training throughput if the MMU is the only limit, Ops/s.
    pub fn mmu_limited_ops(&self, freq_hz: f64) -> f64 {
        2.0 * self.iteration_macs as f64 * freq_hz / self.iteration_mmu_cycles as f64
    }

    /// The maximum achievable training throughput — what a dedicated
    /// training accelerator saturating both the compute and the DRAM
    /// bandwidth would reach, Ops/s.
    pub fn max_achievable_ops(&self, freq_hz: f64, bandwidth_bytes_per_s: f64) -> f64 {
        self.dram_limited_ops(bandwidth_bytes_per_s)
            .min(self.mmu_limited_ops(freq_hz))
    }
}

/// One GEMM of a training pass, streamed from DRAM.
#[derive(Debug, Clone, Copy)]
struct StreamedGemm {
    rows: usize,
    k: usize,
    out: usize,
    mode: GemmMode,
    /// SIMD pass applied to each output block after its compute epoch
    /// (activation for forward, derivative for `dX`, the optimizer
    /// update for `dW`).
    post: Option<SimdOpKind>,
}

/// Emits one streamed GEMM: the activation buffer is split into a fixed
/// input half and output half; rows are processed in blocks sized so
/// both windows fit their halves. Each block stages its input window
/// and weight tiles (waves alternating between the weight-buffer
/// halves when one load exceeds a half), computes, applies the `post`
/// SIMD pass, and drains the output block to DRAM. Returns the last
/// output window.
fn lower_streamed_gemm(
    program: &mut Program,
    dims: &ArrayDims,
    budget: &BufferBudget,
    bpv: u64,
    gemm: StreamedGemm,
) -> Region {
    let act_half = (budget.activation_bytes / 2).max(1);
    let out_base = budget.activation_bytes / 2;
    let widest = (gemm.k.max(gemm.out) as u64 * bpv).max(1);
    let rows_per_block = ((act_half / widest) as usize).clamp(1, gemm.rows);
    let tiles = tile_list(dims, gemm.k, gemm.out, gemm.mode);
    let mut weight_db = DoubleBuffer::new(0, budget.weight_bytes);
    let mut last_window = Region::unaddressed();
    let mut start = 0usize;
    while start < gemm.rows {
        let rows_blk = rows_per_block.min(gemm.rows - start);
        let input = Region::new(0, rows_blk as u64 * gemm.k as u64 * bpv);
        let out_window = Region::new(out_base, rows_blk as u64 * gemm.out as u64 * bpv);
        let waves = partition_waves(&tiles, weight_db.half_bytes(), bpv);
        let last_wave = waves.len().saturating_sub(1);
        for (wi, wave) in waves.iter().enumerate() {
            // Stage epoch: the block's input window rides the first wave.
            if wi == 0 {
                program.push(Instruction::LoadDram {
                    target: BufferKind::Activation,
                    region: input,
                });
            }
            let mut bump = Bump::new(weight_db.active_base());
            let regions: Vec<Region> =
                wave.iter().map(|t| bump.alloc(t.weight_bytes(bpv))).collect();
            for &r in &regions {
                program.push(Instruction::LoadDram { target: BufferKind::Weight, region: r });
            }
            program.push(Instruction::Sync);
            // Compute epoch.
            emit_tiles(
                program,
                wave,
                &regions,
                RepeatGeometry { rows: rows_blk, mode: gemm.mode, input, out_base, bpv },
            );
            if wi == last_wave {
                if let Some(kind) = gemm.post {
                    program.push(Instruction::Simd {
                        kind,
                        elems: rows_blk * gemm.out,
                        region: out_window,
                    });
                }
            }
            program.push(Instruction::Sync);
            weight_db.flip();
        }
        // Drain epoch: stash the block for the rest of the iteration.
        program.push(Instruction::StoreDram {
            source: BufferKind::Activation,
            region: out_window,
        });
        program.push(Instruction::Sync);
        last_window = out_window;
        start += rows_blk;
    }
    last_window
}

/// The three GEMMs of one training step repeat, in backward order for
/// the reverse passes:
///
/// * forward `Y = X·W` — `rows × k → out` in the step's serving mode;
/// * `dX = dY·Wᵀ` — `rows × out → k`, same mode (the batch stays on the
///   rows);
/// * `dW = Xᵀ·dY` — `k × rows → out` with the `rows`-deep reduction: a
///   tall activation matrix, so it maps in weight-broadcast mode (the
///   paper's mode 2) with the `dY` tiles staged through the weight
///   buffer.
fn step_gemms(step: &crate::layers::GemmStep, batch: usize) -> [StreamedGemm; 3] {
    let rows = batch * step.rows_per_sample;
    [
        StreamedGemm {
            rows,
            k: step.k,
            out: step.out,
            mode: step.mode,
            post: if step.simd_elems_per_sample > 0 {
                Some(SimdOpKind::Activation)
            } else {
                None
            },
        },
        StreamedGemm {
            rows,
            k: step.out,
            out: step.k,
            mode: step.mode,
            post: Some(SimdOpKind::Derivative),
        },
        StreamedGemm {
            rows: step.k,
            k: rows,
            out: step.out,
            mode: GemmMode::WeightBroadcast,
            post: Some(SimdOpKind::WeightUpdate),
        },
    ]
}

/// Lowers one synchronous-SGD iteration of `model` into an executable
/// program: every forward repeat, a loss pass, then the backward
/// repeats in reverse order (`dX` + `dW` with the optimizer update),
/// closing with the parameter-server exchange over the host interface.
///
/// All operands stream from DRAM through staged buffer regions (§2.2:
/// the training footprint is a few GBs, so nothing stays installed);
/// the MAC total is exactly `3 ×` the forward pass — the invariant
/// [`TrainingProfile::iteration_macs`] counts with.
///
/// # Panics
///
/// Panics if `setup.batch` is zero.
pub fn lower_training(model: &ModelSpec, dims: &ArrayDims, setup: &TrainingSetup) -> Program {
    assert!(setup.batch > 0, "training batch must be positive");
    let budget = BufferBudget::paper_default();
    let bpv = setup.encoding.bytes_per_value() as u64;
    let b = setup.batch;
    let mut program = Program::new(format!("{}-training-b{}", model.name(), b));
    // Forward pass.
    let mut last_window = Region::unaddressed();
    for step in model.steps() {
        let [fwd, _, _] = step_gemms(step, b);
        for _ in 0..step.repeats {
            last_window = lower_streamed_gemm(&mut program, dims, &budget, bpv, fwd);
        }
    }
    // Loss over the final output window: the SIMD loss overload
    // rewrites it in place into the output gradient, which drains to
    // DRAM for the backward pass to stream back.
    if !last_window.is_empty() {
        program.push(Instruction::Simd {
            kind: SimdOpKind::Loss,
            elems: (last_window.bytes / bpv.max(1)) as usize,
            region: last_window,
        });
        program.push(Instruction::Sync);
        program.push(Instruction::StoreDram {
            source: BufferKind::Activation,
            region: last_window,
        });
        program.push(Instruction::Sync);
    }
    // Backward pass, reverse step order: activation gradients then
    // weight gradients + optimizer update per repeat.
    for step in model.steps().iter().rev() {
        let [_, dx, dw] = step_gemms(step, b);
        for _ in 0..step.repeats {
            lower_streamed_gemm(&mut program, dims, &budget, bpv, dx);
            lower_streamed_gemm(&mut program, dims, &budget, bpv, dw);
        }
    }
    // Parameter-server exchange: fp32 gradients out, quantized model in.
    program.push(Instruction::HostIo {
        bytes: model.weight_params() * (4 + setup.encoding.bytes_per_value() as u64),
    });
    split_oversized_regions(program)
}

/// A cheap upper bound on [`lower_training`]'s instruction count,
/// mirroring its block/wave arithmetic — used by sweep drivers to skip
/// lowerings too large to analyze on small geometries.
pub fn estimate_training_instructions(
    model: &ModelSpec,
    dims: &ArrayDims,
    setup: &TrainingSetup,
) -> u64 {
    let budget = BufferBudget::paper_default();
    let bpv = setup.encoding.bytes_per_value() as u64;
    let act_half = (budget.activation_bytes / 2).max(1);
    let weight_half = (budget.weight_bytes / 2).max(1);
    let tile_k = dims.tile_k().max(1) as u64;
    let gemm_cost = |g: StreamedGemm| -> u64 {
        let tile_out = crate::lower::tile_out_span(dims, g.mode).max(1) as u64;
        let k_chunks = (g.k as u64).div_ceil(tile_k);
        let out_groups = (g.out as u64).div_ceil(tile_out);
        let tiles = k_chunks * out_groups;
        let widest = (g.k.max(g.out) as u64 * bpv).max(1);
        let rows_per_block = (act_half / widest).clamp(1, g.rows as u64);
        let blocks = (g.rows as u64).div_ceil(rows_per_block);
        let tile_bytes = tile_k * tile_out * bpv;
        let waves = (tiles * tile_bytes).div_ceil(weight_half).max(1);
        // loads + matmuls + accum/post SIMD + per-wave and drain syncs,
        // plus slack for region-split syncs (≤ words/1536).
        blocks * (2 * tiles + out_groups + 2 * waves + 6 + tiles / 256)
    };
    let mut total = 6u64; // loss epoch + host I/O
    for step in model.steps() {
        let [fwd, dx, dw] = step_gemms(step, setup.batch);
        total += step.repeats as u64 * (gemm_cost(fwd) + gemm_cost(dx) + gemm_cost(dw));
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dims_500us() -> ArrayDims {
        ArrayDims { n: 186, w: 3, m: 3 }
    }

    #[test]
    fn lstm_intensity_matches_calibration_target() {
        let p = TrainingProfile::profile(
            &ModelSpec::lstm_2048_25(),
            &dims_500us(),
            &TrainingSetup::paper_default(),
        );
        // HBM-saturated max ≈ 100–115 TOp/s at 1 TB/s (the paper's
        // Figure 9 plateau for Equinox_none).
        let dram_tops = p.dram_limited_ops(1e12) / 1e12;
        assert!(dram_tops > 90.0 && dram_tops < 125.0, "{dram_tops}");
    }

    #[test]
    fn lstm_training_is_dram_bound_on_500us_config() {
        let p = TrainingProfile::profile(
            &ModelSpec::lstm_2048_25(),
            &dims_500us(),
            &TrainingSetup::paper_default(),
        );
        // The MMU could go much faster than DRAM lets it (§2.2).
        assert!(p.mmu_limited_ops(610e6) > 1.5 * p.dram_limited_ops(1e12));
        assert_eq!(
            p.max_achievable_ops(610e6, 1e12),
            p.dram_limited_ops(1e12)
        );
    }

    #[test]
    fn iteration_macs_three_passes() {
        let model = ModelSpec::lstm_2048_25();
        let p = TrainingProfile::profile(
            &model,
            &dims_500us(),
            &TrainingSetup::paper_default(),
        );
        assert_eq!(p.iteration_macs, 3 * 128 * model.macs_per_sample());
    }

    #[test]
    fn traffic_scales_with_inefficiency_factor() {
        let model = ModelSpec::lstm_2048_25();
        let base = TrainingSetup { dram_inefficiency_factor: 1.0, ..Default::default() };
        let double = TrainingSetup { dram_inefficiency_factor: 2.0, ..Default::default() };
        let b1 = TrainingProfile::iteration_traffic_bytes(&model, &base);
        let b2 = TrainingProfile::iteration_traffic_bytes(&model, &double);
        assert!((b2 as f64 / b1 as f64 - 2.0).abs() < 0.01);
    }

    #[test]
    fn footprint_is_a_few_gb() {
        // §2.2: training footprints are in the range of a few GBs.
        let model = ModelSpec::lstm_2048_25();
        let bytes = TrainingProfile::iteration_traffic_bytes(
            &model,
            &TrainingSetup::paper_default(),
        );
        let gb = bytes as f64 / 1e9;
        assert!(gb > 1.0 && gb < 10.0, "{gb}");
    }

    #[test]
    fn gru_training_less_dram_bound_than_lstm() {
        // GRU's 1500 steps reuse the same weights, raising intensity.
        let setup = TrainingSetup::paper_default();
        let lstm = TrainingProfile::profile(&ModelSpec::lstm_2048_25(), &dims_500us(), &setup);
        let gru = TrainingProfile::profile(&ModelSpec::gru_2816_1500(), &dims_500us(), &setup);
        assert!(gru.intensity_ops_per_byte() > lstm.intensity_ops_per_byte());
    }

    #[test]
    #[should_panic(expected = "training batch must be positive")]
    fn zero_batch_panics() {
        let setup = TrainingSetup { batch: 0, ..Default::default() };
        TrainingProfile::profile(&ModelSpec::lstm_2048_25(), &dims_500us(), &setup);
    }

    #[test]
    fn lowered_training_conserves_macs() {
        // The executable lowering and the analytical profile must agree
        // exactly: 3x the forward MACs, for every paper model.
        let d = dims_500us();
        for (model, batch) in [
            (ModelSpec::lstm_2048_25(), 128),
            (ModelSpec::gru_2816_1500(), 32),
            (ModelSpec::resnet50(), 8),
            (ModelSpec::mlp_2048x5(), 128),
        ] {
            let setup = TrainingSetup { batch, ..Default::default() };
            let p = lower_training(&model, &d, &setup);
            let profile = TrainingProfile::profile(&model, &d, &setup);
            assert_eq!(
                p.total_macs(),
                profile.iteration_macs,
                "{} training MACs diverge",
                model.name()
            );
        }
    }

    #[test]
    fn training_program_uses_training_simd_and_host_io() {
        let p = lower_training(
            &ModelSpec::mlp_2048x5(),
            &dims_500us(),
            &TrainingSetup::paper_default(),
        );
        let has_kind = |k: SimdOpKind| {
            p.instructions()
                .iter()
                .any(|i| matches!(i, Instruction::Simd { kind, .. } if *kind == k))
        };
        assert!(has_kind(SimdOpKind::Loss));
        assert!(has_kind(SimdOpKind::Derivative));
        assert!(has_kind(SimdOpKind::WeightUpdate));
        assert!(p
            .instructions()
            .iter()
            .any(|i| matches!(i, Instruction::HostIo { bytes } if *bytes > 0)));
    }

    #[test]
    fn training_program_validates_on_paper_geometry() {
        let d = dims_500us();
        let p = lower_training(&ModelSpec::lstm_2048_25(), &d, &TrainingSetup::paper_default());
        crate::validate::validate_program(&p, &d, &BufferBudget::paper_default())
            .expect("training lowering must respect the instruction buffer");
    }

    #[test]
    fn training_operands_stay_in_buffer_budgets() {
        let budget = BufferBudget::paper_default();
        let p = lower_training(
            &ModelSpec::resnet50(),
            &dims_500us(),
            &TrainingSetup { batch: 8, ..Default::default() },
        );
        for i in p.instructions() {
            match i {
                Instruction::LoadDram { target: crate::instruction::BufferKind::Weight, region } => {
                    assert!(region.end() <= budget.weight_bytes, "weight stage {region} overflows");
                }
                Instruction::LoadDram { region, .. } | Instruction::StoreDram { region, .. } => {
                    assert!(
                        region.end() <= budget.activation_bytes,
                        "activation window {region} overflows"
                    );
                }
                _ => {}
            }
        }
    }

    #[test]
    fn estimate_bounds_lowered_size() {
        let d = dims_500us();
        for (model, batch) in [
            (ModelSpec::lstm_2048_25(), 128),
            (ModelSpec::resnet50(), 8),
            (ModelSpec::mlp_2048x5(), 128),
        ] {
            let setup = TrainingSetup { batch, ..Default::default() };
            let actual = lower_training(&model, &d, &setup).instructions().len() as u64;
            let estimate = estimate_training_instructions(&model, &d, &setup);
            assert!(
                estimate >= actual,
                "{}: estimate {estimate} under actual {actual}",
                model.name()
            );
        }
    }

    #[test]
    fn mmu_utilization_reasonable() {
        // Training keeps the arrays reasonably busy when it runs: the
        // per-iteration effective rate is within [20%, 100%] of peak.
        let d = dims_500us();
        let p = TrainingProfile::profile(
            &ModelSpec::lstm_2048_25(),
            &d,
            &TrainingSetup::paper_default(),
        );
        let peak = 2.0 * d.alu_count() as f64 * 610e6;
        let eff = p.mmu_limited_ops(610e6);
        assert!(eff > 0.2 * peak && eff <= peak, "eff {eff} peak {peak}");
    }
}
