//! The paper's three evaluation workloads (§5).
//!
//! * Machine-translation **LSTM**: 2048 hidden units, 25 timesteps
//!   (DeepBench) — sub-millisecond service time; the main workload.
//! * Speech-recognition **GRU**: 2816 hidden units, 1500 timesteps
//!   (DeepBench) — tens of milliseconds.
//! * **ResNet-50** CNN — a few milliseconds; lowered through im2col,
//!   with matrix shapes that map poorly onto large MMUs.

use crate::layers::{GemmMode, GemmStep};

/// A workload: a named sequence of GEMM steps.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ModelSpec {
    name: String,
    steps: Vec<GemmStep>,
}

impl ModelSpec {
    /// Creates a model from explicit steps.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is empty.
    pub fn new(name: impl Into<String>, steps: Vec<GemmStep>) -> Self {
        assert!(!steps.is_empty(), "a model needs at least one step");
        ModelSpec { name: name.into(), steps }
    }

    /// The DeepBench machine-translation LSTM: 2048 hidden units,
    /// 25 steps.
    pub fn lstm_2048_25() -> Self {
        ModelSpec::new("LSTM", vec![GemmStep::lstm(2048, 25)])
    }

    /// The DeepBench speech-recognition GRU: 2816 hidden units,
    /// 1500 steps.
    pub fn gru_2816_1500() -> Self {
        ModelSpec::new("GRU", vec![GemmStep::gru(2816, 1500)])
    }

    /// ResNet-50 for 224×224 inputs, bottleneck blocks lowered via
    /// im2col. Grouped by stage; shapes follow He et al. (CVPR'16).
    pub fn resnet50() -> Self {
        let steps = vec![
            // conv1: 7×7/2, 3→64, output 112².
            GemmStep::conv2d(3, 64, 7, 112, 112, 1),
            // Stage 2 (56², 3 bottlenecks: 1×1 64, 3×3 64, 1×1 256).
            GemmStep::conv2d(64, 64, 1, 56, 56, 3),
            GemmStep::conv2d(64, 64, 3, 56, 56, 3),
            GemmStep::conv2d(64, 256, 1, 56, 56, 3),
            GemmStep::conv2d(64, 256, 1, 56, 56, 1), // projection shortcut
            // Stage 3 (28², 4 bottlenecks: 128-channel).
            GemmStep::conv2d(256, 128, 1, 28, 28, 4),
            GemmStep::conv2d(128, 128, 3, 28, 28, 4),
            GemmStep::conv2d(128, 512, 1, 28, 28, 4),
            GemmStep::conv2d(256, 512, 1, 28, 28, 1),
            // Stage 4 (14², 6 bottlenecks: 256-channel).
            GemmStep::conv2d(512, 256, 1, 14, 14, 6),
            GemmStep::conv2d(256, 256, 3, 14, 14, 6),
            GemmStep::conv2d(256, 1024, 1, 14, 14, 6),
            GemmStep::conv2d(512, 1024, 1, 14, 14, 1),
            // Stage 5 (7², 3 bottlenecks: 512-channel).
            GemmStep::conv2d(1024, 512, 1, 7, 7, 3),
            GemmStep::conv2d(512, 512, 3, 7, 7, 3),
            GemmStep::conv2d(512, 2048, 1, 7, 7, 3),
            GemmStep::conv2d(1024, 2048, 1, 7, 7, 1),
            // Classifier.
            GemmStep::dense(2048, 1000),
        ];
        ModelSpec::new("Resnet50", steps)
    }

    /// A datacenter MLP in the style of the TPU paper's MLP0/MLP1
    /// workloads: five 2048-wide fully-connected layers. MLPs dominate
    /// datacenter DNN cycles and are pure vector-matrix work.
    pub fn mlp_2048x5() -> Self {
        ModelSpec::new(
            "MLP",
            vec![
                GemmStep::dense(2048, 2048),
                GemmStep::dense(2048, 2048),
                GemmStep::dense(2048, 2048),
                GemmStep::dense(2048, 2048),
                GemmStep::dense(2048, 2048),
            ],
        )
    }

    /// A BERT-base-like Transformer encoder stack (12 layers, d = 768)
    /// for one 128-token sequence: per layer, the four attention
    /// projections (768→768 each, 128 rows per sample) and the two FFN
    /// GEMMs (768→3072, 3072→768). Attention score/context matmuls are
    /// folded into the SIMD budget (they are small at this sequence
    /// length). Brainwave-class accelerators serve exactly this shape.
    pub fn transformer_encoder_768() -> Self {
        let tokens = 128;
        let mut proj = GemmStep::dense(768, 768);
        proj.rows_per_sample = tokens;
        proj.simd_elems_per_sample = tokens * 768;
        proj.repeats = 4 * 12;
        let mut ffn_up = GemmStep::dense(768, 3072);
        ffn_up.rows_per_sample = tokens;
        ffn_up.simd_elems_per_sample = tokens * 3072;
        ffn_up.repeats = 12;
        let mut ffn_down = GemmStep::dense(3072, 768);
        ffn_down.rows_per_sample = tokens;
        ffn_down.simd_elems_per_sample = tokens * 768;
        ffn_down.repeats = 12;
        ModelSpec::new("Transformer", vec![proj, ffn_up, ffn_down])
    }

    /// The model's name as used in the paper's tables.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The GEMM steps.
    pub fn steps(&self) -> &[GemmStep] {
        &self.steps
    }

    /// MACs per sample (one request / one training example forward pass).
    pub fn macs_per_sample(&self) -> u64 {
        self.steps.iter().map(GemmStep::macs_per_sample).sum()
    }

    /// Operations per sample (2 per MAC, the paper's unit), including
    /// SIMD element-wise work (1 op per element).
    pub fn ops_per_sample(&self) -> u64 {
        2 * self.macs_per_sample() + self.steps.iter().map(GemmStep::simd_elems_total).sum::<u64>()
    }

    /// Weight parameters (shared recurrent weights counted once).
    pub fn weight_params(&self) -> u64 {
        self.steps.iter().map(GemmStep::weight_params).sum()
    }

    /// Activation elements produced per sample per forward pass
    /// (stored to DRAM during training for the backward pass).
    pub fn activation_elems_per_sample(&self) -> u64 {
        self.steps
            .iter()
            .map(|s| s.repeats as u64 * s.rows_per_sample as u64 * s.out as u64)
            .sum()
    }

    /// True if the model is dominated by vector-matrix GEMMs (RNN/MLP).
    pub fn is_vector_matrix(&self) -> bool {
        self.steps
            .iter()
            .all(|s| s.mode == GemmMode::VectorMatrix)
    }
}

impl std::fmt::Display for ModelSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} steps, {:.2} GOp/sample, {:.1} M params",
            self.name,
            self.steps.len(),
            self.ops_per_sample() as f64 / 1e9,
            self.weight_params() as f64 / 1e6
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lstm_reference_cost() {
        let m = ModelSpec::lstm_2048_25();
        // ≈0.84 GOp GEMM + 0.0036 GOp SIMD ≈ 0.84–0.95 GOp.
        let gop = m.ops_per_sample() as f64 / 1e9;
        assert!(gop > 0.8 && gop < 1.0, "{gop}");
        assert!(m.is_vector_matrix());
        // 16.8 M params = 16.8 MB in hbfp8: fits the 50 MB weight buffer.
        assert_eq!(m.weight_params(), 2048 * 8192);
    }

    #[test]
    fn gru_service_dominates_lstm() {
        let lstm = ModelSpec::lstm_2048_25();
        let gru = ModelSpec::gru_2816_1500();
        // The paper: GRU service time is two orders of magnitude longer.
        let ratio = gru.ops_per_sample() as f64 / lstm.ops_per_sample() as f64;
        assert!(ratio > 50.0 && ratio < 150.0, "{ratio}");
        assert!(gru.is_vector_matrix());
    }

    #[test]
    fn resnet50_mac_count_matches_literature() {
        let r = ModelSpec::resnet50();
        // ResNet-50 is ≈3.8–4.1 GMACs per 224² image.
        let gmacs = r.macs_per_sample() as f64 / 1e9;
        assert!(gmacs > 3.4 && gmacs < 4.5, "{gmacs}");
        assert!(!r.is_vector_matrix());
        // ≈25 M weight parameters.
        let mparams = r.weight_params() as f64 / 1e6;
        assert!(mparams > 20.0 && mparams < 30.0, "{mparams}");
    }

    #[test]
    fn activation_footprint_positive() {
        for m in [
            ModelSpec::lstm_2048_25(),
            ModelSpec::gru_2816_1500(),
            ModelSpec::resnet50(),
        ] {
            assert!(m.activation_elems_per_sample() > 0, "{}", m.name());
        }
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn empty_model_panics() {
        ModelSpec::new("empty", vec![]);
    }

    #[test]
    fn display_mentions_name() {
        assert!(ModelSpec::lstm_2048_25().to_string().contains("LSTM"));
    }

    #[test]
    fn mlp_is_vector_matrix() {
        let m = ModelSpec::mlp_2048x5();
        assert!(m.is_vector_matrix());
        assert_eq!(m.weight_params(), 5 * 2048 * 2048);
        assert_eq!(m.macs_per_sample(), 5 * 2048 * 2048);
    }

    #[test]
    fn transformer_encoder_scale() {
        let t = ModelSpec::transformer_encoder_768();
        // BERT-base encoder weights ≈ 85 M params (attention + FFN,
        // excluding embeddings).
        let mparams = t.weight_params() as f64 / 1e6;
        assert!(mparams > 70.0 && mparams < 100.0, "{mparams}");
        // ≈ 11 GMACs per 128-token sequence forward pass.
        let gmacs = t.macs_per_sample() as f64 / 1e9;
        assert!(gmacs > 8.0 && gmacs < 15.0, "{gmacs}");
        assert!(t.is_vector_matrix());
    }

    #[test]
    fn transformer_fits_weight_buffer_in_hbfp8_only() {
        // 85 MB of bfloat16 weights overflow the 50 MB weight buffer;
        // hbfp8 halves them — the capacity benefit §2.1 describes.
        use crate::validate::{validate_installation, BufferBudget};
        use equinox_arith::Encoding;
        let t = ModelSpec::transformer_encoder_768();
        let budget = BufferBudget::paper_default();
        assert!(validate_installation(&t, Encoding::Bfloat16, 4, &budget).is_err());
        // hbfp8: 85 MB params at 1 B/value... still over 50 MB — the
        // Transformer streams weights (the Brainwave large-model case).
        assert!(validate_installation(&t, Encoding::Hbfp8, 4, &budget).is_err());
        // The MLP fits comfortably in either encoding.
        let mlp = ModelSpec::mlp_2048x5();
        assert!(validate_installation(&mlp, Encoding::Hbfp8, 186, &budget).is_ok());
        assert!(validate_installation(&mlp, Encoding::Bfloat16, 186, &budget).is_ok());
    }
}
