//! # equinox-isa
//!
//! The accelerator's instruction set, DNN workload descriptors, and the
//! tiling compiler that lowers models onto a given matrix-multiply-unit
//! geometry (§3.1 of the paper).
//!
//! The baseline accelerator executes a custom ISA covering matrix-vector
//! multiplication, convolution (lowered through the im2col unit),
//! vector-vector SIMD operations (activation, batch normalization,
//! pooling — overloaded with derivative and loss calculations for
//! training), and data movement among DRAM, host and the on-chip
//! buffers. A matrix multiplication is divided into tiles as in the
//! paper's Figure 4: each `MatMulTile` instruction addresses one
//! activation tile and `m` weight tiles, producing `m` output tiles.
//!
//! The compiler in [`lower`] turns a [`models::ModelSpec`] into a
//! [`program::Program`] for a given [`ArrayDims`], and the summaries in
//! [`lower::InferenceTiming`] / [`training::TrainingProfile`] give the
//! cycle-level aggregates consumed by the `equinox-sim` crate.
//!
//! ## Example
//!
//! ```
//! use equinox_isa::{ArrayDims, models::ModelSpec, lower};
//!
//! let dims = ArrayDims { n: 16, w: 4, m: 8 };
//! let lstm = ModelSpec::lstm_2048_25();
//! let program = lower::compile_inference(&lstm, &dims, 16);
//! let timing = lower::InferenceTiming::from_program(&program, &dims, 16);
//! assert!(timing.total_cycles > 0);
//! assert_eq!(timing.macs_per_request, lstm.macs_per_sample());
//! ```

pub mod alloc;
pub mod cache;
pub mod encode;
pub mod error;
pub mod im2col;
pub mod instruction;
pub mod layers;
pub mod lower;
pub mod models;
pub mod program;
pub mod training;
pub mod validate;

pub use error::EquinoxError;
pub use instruction::Instruction;
pub use program::Program;

/// Matrix-multiply-unit geometry: `m` systolic arrays of `n × n`
/// processing elements, each `w` values wide (tile side `n·w`, see
/// Figure 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArrayDims {
    /// Systolic array dimension (also the minimum fully-utilizing batch).
    pub n: usize,
    /// Values processed per PE.
    pub w: usize,
    /// Number of systolic arrays.
    pub m: usize,
}

impl ArrayDims {
    /// Reduction-dimension span of one tile: `n·w`.
    pub fn tile_k(&self) -> usize {
        self.n * self.w
    }

    /// Output columns covered by one instruction across all `m` arrays:
    /// `m·n`.
    pub fn tile_out(&self) -> usize {
        self.m * self.n
    }

    /// Multiply-accumulate ALUs: `m·n²·w`.
    pub fn alu_count(&self) -> u64 {
        (self.m * self.n * self.n * self.w) as u64
    }

    /// Pipeline fill latency of a tile pass, cycles: the activation wave
    /// must traverse the `n`-deep array and the `w`-wide PE lanes, and
    /// results drain through `n` accumulator rows.
    pub fn fill_cycles(&self) -> u64 {
        (2 * self.n + self.w) as u64
    }
}

impl std::fmt::Display for ArrayDims {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x({}x{})x{}w", self.m, self.n, self.n, self.w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_derived_quantities() {
        let d = ArrayDims { n: 16, w: 4, m: 8 };
        assert_eq!(d.tile_k(), 64);
        assert_eq!(d.tile_out(), 128);
        assert_eq!(d.alu_count(), 8 * 256 * 4);
        assert_eq!(d.fill_cycles(), 36);
    }

    #[test]
    fn display_is_compact() {
        let d = ArrayDims { n: 2, w: 3, m: 4 };
        assert_eq!(d.to_string(), "4x(2x2)x3w");
    }
}
