//! The im2col unit: lowering convolutions to matrix multiplication.
//!
//! The accelerator's datapath contains a dedicated im2col block
//! (Figure 3) that rewrites a convolution's input feature map into the
//! activation-matrix layout a GEMM expects. This module provides both
//! the shape arithmetic used by the compiler and a functional reference
//! implementation over dense matrices (used by tests and the trainer's
//! CNN path).

use equinox_arith::Matrix;

/// The GEMM shape a convolution lowers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LoweredConv {
    /// Activation-matrix rows per sample: `out_h · out_w`.
    pub rows: usize,
    /// Reduction dimension: `in_ch · kernel²`.
    pub k: usize,
    /// Output columns: `out_ch`.
    pub out: usize,
}

/// Computes the output spatial size of a convolution.
///
/// # Panics
///
/// Panics if the kernel does not fit the padded input or `stride == 0`.
pub fn conv_out_size(input: usize, kernel: usize, stride: usize, padding: usize) -> usize {
    assert!(stride > 0, "stride must be positive");
    let padded = input + 2 * padding;
    assert!(padded >= kernel, "kernel larger than padded input");
    (padded - kernel) / stride + 1
}

/// Shape arithmetic of the im2col lowering.
pub fn lower_shape(
    in_ch: usize,
    out_ch: usize,
    kernel: usize,
    input_hw: usize,
    stride: usize,
    padding: usize,
) -> LoweredConv {
    let o = conv_out_size(input_hw, kernel, stride, padding);
    LoweredConv { rows: o * o, k: in_ch * kernel * kernel, out: out_ch }
}

/// Functional im2col over a single-channel-major input.
///
/// `input` is `in_ch` rows of `h·w` columns (channel-major feature map).
/// The result has `out_h·out_w` rows and `in_ch·kernel²` columns, zero
/// padded, so that `im2col(input) · weights` equals the convolution with
/// `weights` of shape `(in_ch·kernel², out_ch)`.
///
/// # Panics
///
/// Panics if `input` dimensions are inconsistent with `h·w`.
pub fn im2col(
    input: &Matrix,
    h: usize,
    w: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
) -> Matrix {
    assert_eq!(input.cols(), h * w, "input columns must equal h*w");
    let in_ch = input.rows();
    let out_h = conv_out_size(h, kernel, stride, padding);
    let out_w = conv_out_size(w, kernel, stride, padding);
    let mut out = Matrix::zeros(out_h * out_w, in_ch * kernel * kernel);
    for oy in 0..out_h {
        for ox in 0..out_w {
            let row = oy * out_w + ox;
            for c in 0..in_ch {
                for ky in 0..kernel {
                    for kx in 0..kernel {
                        let iy = (oy * stride + ky) as isize - padding as isize;
                        let ix = (ox * stride + kx) as isize - padding as isize;
                        let col = c * kernel * kernel + ky * kernel + kx;
                        if iy >= 0 && ix >= 0 && (iy as usize) < h && (ix as usize) < w {
                            let v = input.get(c, iy as usize * w + ix as usize);
                            out.set(row, col, v);
                        }
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use equinox_arith::gemm::gemm_f32;

    #[test]
    fn out_size_formulas() {
        assert_eq!(conv_out_size(224, 7, 2, 3), 112);
        assert_eq!(conv_out_size(56, 3, 1, 1), 56);
        assert_eq!(conv_out_size(56, 1, 1, 0), 56);
        assert_eq!(conv_out_size(5, 3, 2, 0), 2);
    }

    #[test]
    #[should_panic(expected = "stride must be positive")]
    fn zero_stride_panics() {
        conv_out_size(8, 3, 0, 0);
    }

    #[test]
    fn lower_shape_resnet_conv1() {
        let l = lower_shape(3, 64, 7, 224, 2, 3);
        assert_eq!(l.rows, 112 * 112);
        assert_eq!(l.k, 147);
        assert_eq!(l.out, 64);
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1×1 kernel, stride 1: im2col is a transpose-like reshape.
        let input = Matrix::from_fn(2, 9, |c, i| (c * 9 + i) as f32);
        let cols = im2col(&input, 3, 3, 1, 1, 0);
        assert_eq!(cols.rows(), 9);
        assert_eq!(cols.cols(), 2);
        assert_eq!(cols.get(4, 0), input.get(0, 4));
        assert_eq!(cols.get(4, 1), input.get(1, 4));
    }

    #[test]
    fn im2col_gemm_matches_direct_convolution() {
        // 1 input channel, 3×3 input, 2×2 kernel, stride 1, no padding.
        let input = Matrix::from_vec(1, 9, (0..9).map(|v| v as f32).collect());
        let weights = Matrix::from_vec(4, 1, vec![1.0, 2.0, 3.0, 4.0]);
        let cols = im2col(&input, 3, 3, 2, 1, 0);
        let out = gemm_f32(&cols, &weights);
        // Direct computation of the four output positions.
        let direct = |y: usize, x: usize| {
            input.get(0, y * 3 + x) * 1.0
                + input.get(0, y * 3 + x + 1) * 2.0
                + input.get(0, (y + 1) * 3 + x) * 3.0
                + input.get(0, (y + 1) * 3 + x + 1) * 4.0
        };
        assert_eq!(out.get(0, 0), direct(0, 0));
        assert_eq!(out.get(1, 0), direct(0, 1));
        assert_eq!(out.get(2, 0), direct(1, 0));
        assert_eq!(out.get(3, 0), direct(1, 1));
    }

    #[test]
    fn im2col_padding_zero_fills() {
        let input = Matrix::from_fn(1, 4, |_, i| (i + 1) as f32);
        // 2×2 input, 3×3 kernel, padding 1 → 2×2 output.
        let cols = im2col(&input, 2, 2, 3, 1, 1);
        assert_eq!(cols.rows(), 4);
        assert_eq!(cols.cols(), 9);
        // First output position: top-left corner of the padded image;
        // its first kernel row is entirely padding.
        assert_eq!(cols.get(0, 0), 0.0);
        assert_eq!(cols.get(0, 4), 1.0); // center = input (0,0)
    }
}
