//! The workspace-wide structured error type.
//!
//! `EquinoxError` is the typed, recoverable alternative to the
//! `panic!`/`assert!` argument checks the library crates historically
//! used on their public paths. It is defined here (the lowest crate the
//! simulator, the analyzer, and the facade all depend on) and
//! re-exported by `equinox-sim` and `equinox-core`, so every fallible
//! public API across the three crates speaks one error vocabulary:
//! invalid caller arguments, installation/program validation failures,
//! design-space misses, analyzer rejections, and malformed
//! fault-injection scenarios.
//!
//! Every variant carries enough context to be matched on
//! programmatically ([`EquinoxError::kind`] gives a stable label) and
//! rendered for humans (`Display`).

use crate::validate::ValidationError;

/// A structured, recoverable error from the Equinox library crates.
#[derive(Debug, Clone, PartialEq)]
pub enum EquinoxError {
    /// A caller-supplied argument violates an API precondition (the
    /// cases that used to be `assert!`s on library paths).
    InvalidArgument {
        /// The public API that rejected the argument, e.g.
        /// `"loadgen::poisson_arrivals"`.
        api: &'static str,
        /// What was wrong with it.
        message: String,
    },
    /// A model or program failed static validation against the
    /// accelerator's resources (wraps [`ValidationError`], which keeps
    /// its stable `EQXnnnn` code).
    Validation(ValidationError),
    /// No design point satisfies the requested constraint.
    NoDesign {
        /// The encoding swept.
        encoding: String,
        /// The constraint no design satisfied.
        constraint: String,
    },
    /// The `equinox-check` analyzer rejected a compiled program or
    /// configuration with error-severity findings.
    AnalysisRejected {
        /// The analyzed subject (config/model@batch).
        subject: String,
        /// Number of error-severity diagnostics.
        errors: usize,
        /// The rendered diagnostic report.
        report: String,
    },
    /// A fault-injection scenario is malformed (empty window, negative
    /// rate multiplier, corruption probability outside `[0, 1]`, …).
    FaultModel {
        /// The scenario's name.
        scenario: String,
        /// What was wrong with it.
        message: String,
    },
}

impl EquinoxError {
    /// Shorthand for an [`EquinoxError::InvalidArgument`].
    pub fn invalid_argument(api: &'static str, message: impl Into<String>) -> Self {
        EquinoxError::InvalidArgument { api, message: message.into() }
    }

    /// Shorthand for an [`EquinoxError::FaultModel`].
    pub fn fault_model(scenario: impl Into<String>, message: impl Into<String>) -> Self {
        EquinoxError::FaultModel { scenario: scenario.into(), message: message.into() }
    }

    /// A stable, machine-matchable label for the error class.
    pub fn kind(&self) -> &'static str {
        match self {
            EquinoxError::InvalidArgument { .. } => "invalid-argument",
            EquinoxError::Validation(_) => "validation",
            EquinoxError::NoDesign { .. } => "no-design",
            EquinoxError::AnalysisRejected { .. } => "analysis-rejected",
            EquinoxError::FaultModel { .. } => "fault-model",
        }
    }
}

impl std::fmt::Display for EquinoxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EquinoxError::InvalidArgument { api, message } => {
                write!(f, "invalid argument to {api}: {message}")
            }
            EquinoxError::Validation(e) => write!(f, "validation failed [{}]: {e}", e.code()),
            EquinoxError::NoDesign { encoding, constraint } => {
                write!(f, "no {encoding} design satisfies the {constraint} constraint")
            }
            EquinoxError::AnalysisRejected { subject, errors, report } => {
                write!(f, "analyzer rejected {subject} with {errors} error(s):\n{report}")
            }
            EquinoxError::FaultModel { scenario, message } => {
                write!(f, "malformed fault scenario '{scenario}': {message}")
            }
        }
    }
}

impl std::error::Error for EquinoxError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EquinoxError::Validation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ValidationError> for EquinoxError {
    fn from(e: ValidationError) -> Self {
        EquinoxError::Validation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable() {
        assert_eq!(EquinoxError::invalid_argument("api", "bad").kind(), "invalid-argument");
        assert_eq!(EquinoxError::fault_model("s", "bad").kind(), "fault-model");
        assert_eq!(
            EquinoxError::NoDesign { encoding: "hbfp8".into(), constraint: "1us".into() }.kind(),
            "no-design"
        );
    }

    #[test]
    fn display_carries_context() {
        let e = EquinoxError::invalid_argument("loadgen::poisson_arrivals", "rate is NaN");
        assert!(e.to_string().contains("loadgen::poisson_arrivals"));
        assert!(e.to_string().contains("rate is NaN"));
        let f = EquinoxError::fault_model("burst", "window is empty");
        assert!(f.to_string().contains("burst"));
    }

    #[test]
    fn validation_errors_convert_and_chain() {
        let v = ValidationError::WeightsDontFit { required: 2, available: 1 };
        let e: EquinoxError = v.clone().into();
        assert_eq!(e, EquinoxError::Validation(v));
        assert!(e.to_string().contains("EQX0203"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn analysis_rejection_renders_report() {
        let e = EquinoxError::AnalysisRejected {
            subject: "cfg/LSTM@batch16".into(),
            errors: 2,
            report: "error[EQX0101] ...".into(),
        };
        let s = e.to_string();
        assert!(s.contains("2 error(s)"));
        assert!(s.contains("EQX0101"));
    }
}
