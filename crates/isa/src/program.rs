//! Instruction sequences with simple aggregate queries.

use crate::instruction::Instruction;

/// A straight-line instruction sequence for one request batch (or one
/// training iteration). `Sync` instructions delimit dependence regions
/// (layer/timestep boundaries).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    name: String,
    instructions: Vec<Instruction>,
}

impl Program {
    /// Creates an empty program.
    pub fn new(name: impl Into<String>) -> Self {
        Program { name: name.into(), instructions: Vec::new() }
    }

    /// The program's name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends an instruction.
    pub fn push(&mut self, instruction: Instruction) {
        self.instructions.push(instruction);
    }

    /// The instruction sequence.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// True if the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Number of 16-byte words the program occupies on the wire (tile
    /// multiplies take three words each; see
    /// [`Instruction::encoded_words`]).
    pub fn encoded_words(&self) -> usize {
        self.instructions.iter().map(Instruction::encoded_words).sum()
    }

    /// Total useful MACs across all instructions.
    pub fn total_macs(&self) -> u64 {
        self.instructions.iter().map(Instruction::macs).sum()
    }

    /// Total DRAM bytes moved.
    pub fn total_dram_bytes(&self) -> u64 {
        self.instructions.iter().map(Instruction::dram_bytes).sum()
    }

    /// Number of MMU instructions.
    pub fn mmu_instruction_count(&self) -> usize {
        self.instructions.iter().filter(|i| i.uses_mmu()).count()
    }

    /// Number of sync barriers.
    pub fn sync_count(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| matches!(i, Instruction::Sync))
            .count()
    }
}

impl Extend<Instruction> for Program {
    fn extend<T: IntoIterator<Item = Instruction>>(&mut self, iter: T) {
        self.instructions.extend(iter);
    }
}

impl std::fmt::Display for Program {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Program '{}': {} instructions ({} MMU, {} syncs), {} MMACs, {} DRAM bytes",
            self.name,
            self.len(),
            self.mmu_instruction_count(),
            self.sync_count(),
            self.total_macs() / 1_000_000,
            self.total_dram_bytes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instruction::{BufferKind, Region, SimdOpKind};

    fn sample() -> Program {
        let mut p = Program::new("test");
        p.push(Instruction::matmul(2, 3, 4, crate::layers::GemmMode::VectorMatrix));
        p.push(Instruction::simd(SimdOpKind::Activation, 8));
        p.push(Instruction::Sync);
        p.push(Instruction::LoadDram { target: BufferKind::Weight, region: Region::new(0, 64) });
        p
    }

    #[test]
    fn aggregates() {
        let p = sample();
        assert_eq!(p.len(), 4);
        assert_eq!(p.encoded_words(), 6, "the tile multiply takes three words");
        assert!(!p.is_empty());
        assert_eq!(p.total_macs(), 24);
        assert_eq!(p.total_dram_bytes(), 64);
        assert_eq!(p.mmu_instruction_count(), 1);
        assert_eq!(p.sync_count(), 1);
        assert_eq!(p.name(), "test");
    }

    #[test]
    fn extend_appends() {
        let mut p = Program::new("x");
        p.extend([Instruction::Sync, Instruction::Sync]);
        assert_eq!(p.sync_count(), 2);
    }

    #[test]
    fn display_summary() {
        let s = sample().to_string();
        assert!(s.contains("4 instructions"));
        assert!(s.contains("1 MMU"));
    }

    #[test]
    fn empty_program() {
        let p = Program::new("empty");
        assert!(p.is_empty());
        assert_eq!(p.total_macs(), 0);
    }
}
