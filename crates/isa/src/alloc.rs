//! Deterministic buffer allocators for the lowering pipeline.
//!
//! The compiler assigns every instruction operand a concrete byte
//! [`Region`] inside its on-chip buffer. Two tiny allocators cover all
//! placement patterns the lowerings need:
//!
//! * [`Bump`] — monotone bump allocation for operands that stay
//!   resident (installed weight tiles, staged wave tiles). It is
//!   *total*: allocation past the managed capacity still returns a
//!   region (the `equinox-check` `EQX0504` pass flags it) so lowering
//!   never panics on geometries or models that do not fit.
//! * [`DoubleBuffer`] — the classic ping/pong split of a buffer into
//!   two halves, used for activation windows (compute reads the active
//!   half while the next window lands in the spare half) and for
//!   streamed weight waves.

use crate::instruction::Region;

/// Monotone bump allocator over `[base, ∞)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bump {
    base: u64,
    next: u64,
}

impl Bump {
    /// An empty allocator starting at `base`.
    pub fn new(base: u64) -> Self {
        Bump { base, next: base }
    }

    /// Allocates `bytes` at the current cursor and advances it. Never
    /// fails; overflow past any capacity is the analyzer's to flag.
    pub fn alloc(&mut self, bytes: u64) -> Region {
        let region = Region::new(self.next, bytes);
        self.next = self.next.saturating_add(bytes);
        region
    }

    /// Bytes allocated so far.
    pub fn used(&self) -> u64 {
        self.next - self.base
    }
}

/// Ping/pong halves of a buffer: `active` is where new data lands,
/// `spare` holds what the previous phase produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DoubleBuffer {
    base: u64,
    half_bytes: u64,
    flipped: bool,
}

impl DoubleBuffer {
    /// Splits `[base, base + total_bytes)` into two equal halves.
    pub fn new(base: u64, total_bytes: u64) -> Self {
        DoubleBuffer { base, half_bytes: total_bytes / 2, flipped: false }
    }

    /// Capacity of one half, bytes.
    pub fn half_bytes(&self) -> u64 {
        self.half_bytes
    }

    /// Base offset of the active half.
    pub fn active_base(&self) -> u64 {
        if self.flipped {
            self.base + self.half_bytes
        } else {
            self.base
        }
    }

    /// Base offset of the spare half.
    pub fn spare_base(&self) -> u64 {
        if self.flipped {
            self.base
        } else {
            self.base + self.half_bytes
        }
    }

    /// Swaps the active and spare halves.
    pub fn flip(&mut self) {
        self.flipped = !self.flipped;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_is_monotone_and_disjoint() {
        let mut b = Bump::new(0x100);
        let r1 = b.alloc(64);
        let r2 = b.alloc(32);
        assert_eq!(r1, Region::new(0x100, 64));
        assert_eq!(r2, Region::new(0x140, 32));
        assert!(!r1.overlaps(&r2));
        assert_eq!(b.used(), 96);
    }

    #[test]
    fn bump_is_total_past_capacity() {
        let mut b = Bump::new(u64::MAX - 10);
        let r = b.alloc(100);
        assert_eq!(r.bytes, 100);
        let r2 = b.alloc(1);
        assert_eq!(r2.offset, u64::MAX, "cursor saturates instead of wrapping");
    }

    #[test]
    fn double_buffer_flips() {
        let mut d = DoubleBuffer::new(0, 20 << 20);
        assert_eq!(d.half_bytes(), 10 << 20);
        assert_eq!(d.active_base(), 0);
        assert_eq!(d.spare_base(), 10 << 20);
        d.flip();
        assert_eq!(d.active_base(), 10 << 20);
        assert_eq!(d.spare_base(), 0);
        d.flip();
        assert_eq!(d.active_base(), 0);
    }
}
