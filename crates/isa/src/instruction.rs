//! The accelerator's instruction set (§3.1).
//!
//! Instructions are issued by the instruction dispatcher to the datapath;
//! arithmetic instructions drive the MMU and SIMD unit, data-movement
//! instructions drive the DRAM and host interfaces.
//!
//! Every data-touching instruction names the byte [`Region`] of the
//! on-chip buffer it reads or writes, so static analysis can reason
//! about operand-level dataflow (use-before-define, partial clobber,
//! double-buffer aliasing) instead of whole-buffer occupancy.

use crate::layers::GemmMode;

/// A byte range inside one on-chip buffer: `[offset, offset + bytes)`.
///
/// The all-zero region (`offset == 0 && bytes == 0`) is the
/// *unaddressed* sentinel: it means "this operand's placement was not
/// assigned" and is skipped by the dataflow passes. The lowering
/// pipeline always assigns real addresses; the sentinel exists so
/// hand-written programs (tests, examples) can elide placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Region {
    /// Byte offset from the start of the buffer.
    pub offset: u64,
    /// Extent in bytes.
    pub bytes: u64,
}

impl Region {
    /// A region at `offset` spanning `bytes`.
    pub fn new(offset: u64, bytes: u64) -> Self {
        Region { offset, bytes }
    }

    /// The unaddressed sentinel (see the type docs).
    pub fn unaddressed() -> Self {
        Region { offset: 0, bytes: 0 }
    }

    /// One past the last byte (saturating).
    pub fn end(&self) -> u64 {
        self.offset.saturating_add(self.bytes)
    }

    /// True when the region spans no bytes (this includes the
    /// unaddressed sentinel).
    pub fn is_empty(&self) -> bool {
        self.bytes == 0
    }

    /// True when the two regions share at least one byte. Empty
    /// regions overlap nothing.
    pub fn overlaps(&self, other: &Region) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.offset < other.end()
            && other.offset < self.end()
    }

    /// True when `other` lies entirely within `self`. The empty region
    /// is contained everywhere.
    pub fn contains(&self, other: &Region) -> bool {
        other.is_empty() || (other.offset >= self.offset && other.end() <= self.end())
    }
}

impl std::fmt::Display for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_empty() {
            write!(f, "[unaddressed]")
        } else {
            write!(f, "[{:#x}..{:#x})", self.offset, self.end())
        }
    }
}

/// Which on-chip buffer a data-movement instruction targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BufferKind {
    /// The activation buffer (20 MB, broadcast-connected to all arrays).
    Activation,
    /// The weight buffer (50 MB, one bank per systolic array).
    Weight,
    /// The instruction buffer (32 KB).
    Instruction,
    /// The SIMD register file (5 MB).
    SimdRegisters,
}

/// SIMD (vector-vector) operation classes.
///
/// The training enhancements overload the SIMD ISA with derivative and
/// loss calculations (§3.2); those appear as distinct kinds so programs
/// can be audited for which instructions the baseline inference
/// accelerator lacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimdOpKind {
    /// Element-wise activation (sigmoid/tanh/relu) or pooling.
    Activation,
    /// Element-wise arithmetic (add/mul), incl. tile accumulation.
    Elementwise,
    /// Batch normalization.
    BatchNorm,
    /// Derivative computation (training-only overload).
    Derivative,
    /// Loss computation (training-only overload).
    Loss,
    /// Optimizer weight update (training-only overload).
    WeightUpdate,
}

impl SimdOpKind {
    /// True for the SIMD overloads added by Equinox for training.
    pub fn is_training_only(self) -> bool {
        matches!(
            self,
            SimdOpKind::Derivative | SimdOpKind::Loss | SimdOpKind::WeightUpdate
        )
    }
}

/// One instruction of the accelerator ISA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instruction {
    /// Multiply one activation tile against `m` weight tiles (Figure 4):
    /// streams `rows` activation rows through the arrays; `k_span ≤ n·w`
    /// and `out_span ≤ m·n` give the useful extent of the tile (smaller
    /// extents leave part of the arrays idle — "dimension mismatch"
    /// stalls in the Figure 8 breakdown).
    MatMulTile {
        /// Activation rows streamed (batch dimension).
        rows: usize,
        /// Useful reduction extent of this tile.
        k_span: usize,
        /// Useful output extent across the `m` arrays.
        out_span: usize,
        /// Array mapping mode. `VectorMatrix` broadcasts activations
        /// (occupancy = `rows` cycles); `WeightBroadcast` broadcasts
        /// weights and splits rows across the `m` arrays (occupancy =
        /// `⌈rows/m⌉` cycles).
        mode: GemmMode,
        /// Weight-tile region read from the weight buffer.
        weights: Region,
        /// Activation region read from the activation buffer.
        input: Region,
        /// Output region written to the activation buffer.
        output: Region,
    },
    /// Vector-vector operation on `elems` elements, reading and writing
    /// `region` of the activation buffer in place.
    Simd {
        /// Operation class.
        kind: SimdOpKind,
        /// Total elements processed.
        elems: usize,
        /// Activation-buffer region operated on (read-modify-write).
        region: Region,
    },
    /// Move bytes from DRAM into `region` of an on-chip buffer.
    LoadDram {
        /// Destination buffer.
        target: BufferKind,
        /// Destination region.
        region: Region,
    },
    /// Move `region` of an on-chip buffer to DRAM.
    StoreDram {
        /// Source buffer.
        source: BufferKind,
        /// Source region.
        region: Region,
    },
    /// Move `bytes` across the host interface (requests, responses,
    /// parameter-server gradient/model traffic).
    HostIo {
        /// Transfer size.
        bytes: u64,
    },
    /// Barrier: all prior instructions of this context must complete
    /// before any later one issues (layer/timestep boundary).
    Sync,
}

impl Instruction {
    /// A tile multiply with unaddressed operands (placement elided; see
    /// [`Region::unaddressed`]).
    pub fn matmul(rows: usize, k_span: usize, out_span: usize, mode: GemmMode) -> Self {
        Instruction::MatMulTile {
            rows,
            k_span,
            out_span,
            mode,
            weights: Region::unaddressed(),
            input: Region::unaddressed(),
            output: Region::unaddressed(),
        }
    }

    /// A SIMD op with an unaddressed operand (placement elided).
    pub fn simd(kind: SimdOpKind, elems: usize) -> Self {
        Instruction::Simd { kind, elems, region: Region::unaddressed() }
    }

    /// Useful multiply-accumulate operations performed by the
    /// instruction (`rows × k_span × out_span` for a tile multiply).
    pub fn macs(&self) -> u64 {
        match *self {
            Instruction::MatMulTile { rows, k_span, out_span, .. } => {
                rows as u64 * k_span as u64 * out_span as u64
            }
            _ => 0,
        }
    }

    /// In-accumulator reduction-chain depth of the instruction: the
    /// number of products a single 25-bit accumulator absorbs without an
    /// intervening drain. `Some(k_span)` for a tile multiply (each
    /// output element accumulates `k_span` mantissa products before the
    /// accumulator drains to the SIMD unit), `None` for everything else.
    /// Cross-k-chunk accumulation happens *after* the drain, in fp32 on
    /// the SIMD unit, so it never deepens this chain — the `numerics`
    /// pass in `equinox-check` keys its EQX0801/0805 saturation bound on
    /// exactly this quantity.
    pub fn reduction_depth(&self) -> Option<usize> {
        match *self {
            Instruction::MatMulTile { k_span, .. } => Some(k_span),
            _ => None,
        }
    }

    /// MMU occupancy in cycles on an MMU with `m_arrays` systolic
    /// arrays, or 0 for non-MMU instructions.
    pub fn mmu_occupancy_cycles(&self, m_arrays: usize) -> u64 {
        match *self {
            Instruction::MatMulTile { rows, mode, .. } => match mode {
                GemmMode::VectorMatrix => rows as u64,
                GemmMode::WeightBroadcast => rows.div_ceil(m_arrays.max(1)) as u64,
            },
            _ => 0,
        }
    }

    /// True for instructions that occupy the MMU.
    pub fn uses_mmu(&self) -> bool {
        matches!(self, Instruction::MatMulTile { .. })
    }

    /// True for instructions that occupy the SIMD unit.
    pub fn uses_simd(&self) -> bool {
        matches!(self, Instruction::Simd { .. })
    }

    /// Bytes moved over the DRAM interface, if any.
    pub fn dram_bytes(&self) -> u64 {
        match *self {
            Instruction::LoadDram { region, .. } | Instruction::StoreDram { region, .. } => {
                region.bytes
            }
            _ => 0,
        }
    }

    /// Number of 16-byte words the instruction occupies on the wire
    /// (tile multiplies carry two extra operand words for their three
    /// regions; everything else fits in one word).
    pub fn encoded_words(&self) -> usize {
        match self {
            Instruction::MatMulTile { .. } => 3,
            _ => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_macs() {
        let i = Instruction::matmul(4, 8, 16, GemmMode::VectorMatrix);
        assert_eq!(i.macs(), 4 * 8 * 16);
        assert!(i.uses_mmu());
        assert!(!i.uses_simd());
        assert_eq!(i.dram_bytes(), 0);
        assert_eq!(i.encoded_words(), 3);
    }

    #[test]
    fn reduction_depth_is_k_span_for_tiles_only() {
        assert_eq!(
            Instruction::matmul(4, 558, 16, GemmMode::VectorMatrix).reduction_depth(),
            Some(558)
        );
        assert_eq!(Instruction::simd(SimdOpKind::Elementwise, 128).reduction_depth(), None);
        assert_eq!(Instruction::Sync.reduction_depth(), None);
    }

    #[test]
    fn occupancy_by_mode() {
        let vm = Instruction::matmul(100, 8, 16, GemmMode::VectorMatrix);
        let wb = Instruction::matmul(100, 8, 16, GemmMode::WeightBroadcast);
        assert_eq!(vm.mmu_occupancy_cycles(4), 100);
        assert_eq!(wb.mmu_occupancy_cycles(4), 25);
        assert_eq!(wb.mmu_occupancy_cycles(3), 34);
        assert_eq!(Instruction::Sync.mmu_occupancy_cycles(4), 0);
    }

    #[test]
    fn simd_classification() {
        let i = Instruction::simd(SimdOpKind::Activation, 128);
        assert!(i.uses_simd());
        assert_eq!(i.macs(), 0);
        assert_eq!(i.encoded_words(), 1);
        assert!(!SimdOpKind::Activation.is_training_only());
        assert!(SimdOpKind::Derivative.is_training_only());
        assert!(SimdOpKind::WeightUpdate.is_training_only());
        assert!(SimdOpKind::Loss.is_training_only());
        assert!(!SimdOpKind::Elementwise.is_training_only());
        assert!(!SimdOpKind::BatchNorm.is_training_only());
    }

    #[test]
    fn dram_bytes_both_directions() {
        let l = Instruction::LoadDram { target: BufferKind::Weight, region: Region::new(0, 100) };
        let s = Instruction::StoreDram {
            source: BufferKind::Activation,
            region: Region::new(64, 200),
        };
        assert_eq!(l.dram_bytes(), 100);
        assert_eq!(s.dram_bytes(), 200);
        assert_eq!(Instruction::Sync.dram_bytes(), 0);
        assert_eq!(l.encoded_words(), 1);
    }

    #[test]
    fn region_algebra() {
        let a = Region::new(0, 100);
        let b = Region::new(50, 100);
        let c = Region::new(100, 16);
        let z = Region::unaddressed();
        assert_eq!(a.end(), 100);
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c), "half-open: [0,100) vs [100,116)");
        assert!(!a.overlaps(&z));
        assert!(!z.overlaps(&z));
        assert!(z.is_empty());
        assert!(!a.is_empty());
        assert!(a.contains(&Region::new(10, 20)));
        assert!(!a.contains(&b));
        assert!(a.contains(&z), "empty region is contained everywhere");
        assert_eq!(Region::new(u64::MAX, 5).end(), u64::MAX, "end saturates");
        assert_eq!(format!("{z}"), "[unaddressed]");
        assert_eq!(format!("{c}"), "[0x64..0x74)");
    }
}
