//! The accelerator's instruction set (§3.1).
//!
//! Instructions are issued by the instruction dispatcher to the datapath;
//! arithmetic instructions drive the MMU and SIMD unit, data-movement
//! instructions drive the DRAM and host interfaces.

use crate::layers::GemmMode;

/// Which on-chip buffer a data-movement instruction targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BufferKind {
    /// The activation buffer (20 MB, broadcast-connected to all arrays).
    Activation,
    /// The weight buffer (50 MB, one bank per systolic array).
    Weight,
    /// The instruction buffer (32 KB).
    Instruction,
    /// The SIMD register file (5 MB).
    SimdRegisters,
}

/// SIMD (vector-vector) operation classes.
///
/// The training enhancements overload the SIMD ISA with derivative and
/// loss calculations (§3.2); those appear as distinct kinds so programs
/// can be audited for which instructions the baseline inference
/// accelerator lacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimdOpKind {
    /// Element-wise activation (sigmoid/tanh/relu) or pooling.
    Activation,
    /// Element-wise arithmetic (add/mul), incl. tile accumulation.
    Elementwise,
    /// Batch normalization.
    BatchNorm,
    /// Derivative computation (training-only overload).
    Derivative,
    /// Loss computation (training-only overload).
    Loss,
    /// Optimizer weight update (training-only overload).
    WeightUpdate,
}

impl SimdOpKind {
    /// True for the SIMD overloads added by Equinox for training.
    pub fn is_training_only(self) -> bool {
        matches!(
            self,
            SimdOpKind::Derivative | SimdOpKind::Loss | SimdOpKind::WeightUpdate
        )
    }
}

/// One instruction of the accelerator ISA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instruction {
    /// Multiply one activation tile against `m` weight tiles (Figure 4):
    /// streams `rows` activation rows through the arrays; `k_span ≤ n·w`
    /// and `out_span ≤ m·n` give the useful extent of the tile (smaller
    /// extents leave part of the arrays idle — "dimension mismatch"
    /// stalls in the Figure 8 breakdown).
    MatMulTile {
        /// Activation rows streamed (batch dimension).
        rows: usize,
        /// Useful reduction extent of this tile.
        k_span: usize,
        /// Useful output extent across the `m` arrays.
        out_span: usize,
        /// Array mapping mode. `VectorMatrix` broadcasts activations
        /// (occupancy = `rows` cycles); `WeightBroadcast` broadcasts
        /// weights and splits rows across the `m` arrays (occupancy =
        /// `⌈rows/m⌉` cycles).
        mode: GemmMode,
    },
    /// Vector-vector operation on `elems` elements.
    Simd {
        /// Operation class.
        kind: SimdOpKind,
        /// Total elements processed.
        elems: usize,
    },
    /// Move `bytes` from DRAM into an on-chip buffer.
    LoadDram {
        /// Destination buffer.
        target: BufferKind,
        /// Transfer size.
        bytes: u64,
    },
    /// Move `bytes` from an on-chip buffer to DRAM.
    StoreDram {
        /// Source buffer.
        source: BufferKind,
        /// Transfer size.
        bytes: u64,
    },
    /// Move `bytes` across the host interface (requests, responses,
    /// parameter-server gradient/model traffic).
    HostIo {
        /// Transfer size.
        bytes: u64,
    },
    /// Barrier: all prior instructions of this context must complete
    /// before any later one issues (layer/timestep boundary).
    Sync,
}

impl Instruction {
    /// Useful multiply-accumulate operations performed by the
    /// instruction (`rows × k_span × out_span` for a tile multiply).
    pub fn macs(&self) -> u64 {
        match *self {
            Instruction::MatMulTile { rows, k_span, out_span, .. } => {
                rows as u64 * k_span as u64 * out_span as u64
            }
            _ => 0,
        }
    }

    /// MMU occupancy in cycles on an MMU with `m_arrays` systolic
    /// arrays, or 0 for non-MMU instructions.
    pub fn mmu_occupancy_cycles(&self, m_arrays: usize) -> u64 {
        match *self {
            Instruction::MatMulTile { rows, mode, .. } => match mode {
                GemmMode::VectorMatrix => rows as u64,
                GemmMode::WeightBroadcast => rows.div_ceil(m_arrays.max(1)) as u64,
            },
            _ => 0,
        }
    }

    /// True for instructions that occupy the MMU.
    pub fn uses_mmu(&self) -> bool {
        matches!(self, Instruction::MatMulTile { .. })
    }

    /// True for instructions that occupy the SIMD unit.
    pub fn uses_simd(&self) -> bool {
        matches!(self, Instruction::Simd { .. })
    }

    /// Bytes moved over the DRAM interface, if any.
    pub fn dram_bytes(&self) -> u64 {
        match *self {
            Instruction::LoadDram { bytes, .. } | Instruction::StoreDram { bytes, .. } => bytes,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_macs() {
        let i = Instruction::MatMulTile {
            rows: 4,
            k_span: 8,
            out_span: 16,
            mode: GemmMode::VectorMatrix,
        };
        assert_eq!(i.macs(), 4 * 8 * 16);
        assert!(i.uses_mmu());
        assert!(!i.uses_simd());
        assert_eq!(i.dram_bytes(), 0);
    }

    #[test]
    fn occupancy_by_mode() {
        let vm = Instruction::MatMulTile {
            rows: 100,
            k_span: 8,
            out_span: 16,
            mode: GemmMode::VectorMatrix,
        };
        let wb = Instruction::MatMulTile {
            rows: 100,
            k_span: 8,
            out_span: 16,
            mode: GemmMode::WeightBroadcast,
        };
        assert_eq!(vm.mmu_occupancy_cycles(4), 100);
        assert_eq!(wb.mmu_occupancy_cycles(4), 25);
        assert_eq!(wb.mmu_occupancy_cycles(3), 34);
        assert_eq!(Instruction::Sync.mmu_occupancy_cycles(4), 0);
    }

    #[test]
    fn simd_classification() {
        let i = Instruction::Simd { kind: SimdOpKind::Activation, elems: 128 };
        assert!(i.uses_simd());
        assert_eq!(i.macs(), 0);
        assert!(!SimdOpKind::Activation.is_training_only());
        assert!(SimdOpKind::Derivative.is_training_only());
        assert!(SimdOpKind::WeightUpdate.is_training_only());
        assert!(SimdOpKind::Loss.is_training_only());
        assert!(!SimdOpKind::Elementwise.is_training_only());
        assert!(!SimdOpKind::BatchNorm.is_training_only());
    }

    #[test]
    fn dram_bytes_both_directions() {
        let l = Instruction::LoadDram { target: BufferKind::Weight, bytes: 100 };
        let s = Instruction::StoreDram { source: BufferKind::Activation, bytes: 200 };
        assert_eq!(l.dram_bytes(), 100);
        assert_eq!(s.dram_bytes(), 200);
        assert_eq!(Instruction::Sync.dram_bytes(), 0);
    }
}
