//! Process-wide memoized compilation cache.
//!
//! The evaluation stack compiles the same lowerings over and over: the
//! `equinox-check` CLI sweep, `Equinox::check`, `Equinox::compile`, and
//! the `regen-results -- checks` grid all lower identical
//! `(model, dims, batch, encoding, budget)` points — and with the
//! parallel runtime several of them do so *concurrently*. This module
//! memoizes [`crate::lower::compile_inference_with`] and
//! [`crate::training::lower_training`] behind `Arc`-shared programs so each
//! distinct lowering is compiled once per process.
//!
//! Lowering is a pure function of the key, so cache hits are
//! behavior-preserving; eviction (or a concurrent double-compile racing
//! for the same key) only costs recompilation, never changes a result.
//! Hit/miss/eviction counters feed `results/bench_timings.json` so the
//! perf trajectory of future PRs records how much the cache carries.
//!
//! ## Bounds
//!
//! Training lowerings reach millions of instructions, so the cache is
//! bounded two ways: programs above [`MAX_ENTRY_INSTRUCTIONS`] bypass
//! the cache entirely (compiled per call, as before), and the resident
//! total is capped at [`MAX_TOTAL_INSTRUCTIONS`] with oldest-first
//! eviction. At ~`100 B` per instruction the worst-case footprint is a
//! few hundred MB, far under the working set of the analyses themselves.

use crate::lower::compile_inference_with;
use crate::models::ModelSpec;
use crate::training::{lower_training, TrainingSetup};
use crate::validate::BufferBudget;
use crate::{ArrayDims, Program};
use equinox_arith::Encoding;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex, OnceLock};

/// Programs larger than this are compiled per call instead of cached.
pub const MAX_ENTRY_INSTRUCTIONS: u64 = 2_500_000;

/// Upper bound on the summed instruction count of resident entries;
/// oldest entries are evicted past it.
pub const MAX_TOTAL_INSTRUCTIONS: u64 = 6_000_000;

/// What one lowering was keyed on. `TrainingSetup` carries an `f64`
/// traffic factor, hashed by bit pattern (it is a configured constant,
/// never computed, so bitwise equality is the right notion).
#[derive(Clone, PartialEq, Eq, Hash)]
enum Key {
    Inference {
        model: ModelSpec,
        dims: ArrayDims,
        batch: usize,
        encoding: Encoding,
        budget: (u64, u64, u64),
    },
    Training {
        model: ModelSpec,
        dims: ArrayDims,
        batch: usize,
        encoding: Encoding,
        dram_factor_bits: u64,
    },
}

/// Counters for the compile cache, for the timings artifact.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from a resident entry.
    pub hits: u64,
    /// Lookups that had to compile (includes bypassed oversize ones).
    pub misses: u64,
    /// Entries dropped to stay under [`MAX_TOTAL_INSTRUCTIONS`].
    pub evictions: u64,
}

#[derive(Default)]
struct CacheInner {
    map: HashMap<Key, Arc<Program>>,
    /// Insertion order, for oldest-first eviction.
    order: VecDeque<Key>,
    resident_instructions: u64,
    stats: CacheStats,
}

fn cache() -> &'static Mutex<CacheInner> {
    static CACHE: OnceLock<Mutex<CacheInner>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(CacheInner::default()))
}

fn lookup(key: &Key) -> Option<Arc<Program>> {
    let mut c = cache().lock().expect("compile cache poisoned");
    match c.map.get(key) {
        Some(p) => {
            let p = Arc::clone(p);
            c.stats.hits += 1;
            Some(p)
        }
        None => {
            c.stats.misses += 1;
            None
        }
    }
}

fn insert(key: Key, program: &Arc<Program>) {
    let len = program.instructions().len() as u64;
    if len > MAX_ENTRY_INSTRUCTIONS {
        return;
    }
    let mut c = cache().lock().expect("compile cache poisoned");
    if c.map.contains_key(&key) {
        // A concurrent compile of the same key won the race; keep the
        // resident copy (the programs are identical).
        return;
    }
    while c.resident_instructions + len > MAX_TOTAL_INSTRUCTIONS {
        let Some(old) = c.order.pop_front() else { break };
        if let Some(p) = c.map.remove(&old) {
            c.resident_instructions -= p.instructions().len() as u64;
            c.stats.evictions += 1;
        }
    }
    c.resident_instructions += len;
    c.order.push_back(key.clone());
    c.map.insert(key, Arc::clone(program));
}

/// Memoized [`compile_inference_with`]. The returned program is shared;
/// treat it as immutable (every analysis pass takes `&Program`).
pub fn compile_inference_cached(
    model: &ModelSpec,
    dims: &ArrayDims,
    batch: usize,
    encoding: Encoding,
    budget: &BufferBudget,
) -> Arc<Program> {
    let key = Key::Inference {
        model: model.clone(),
        dims: *dims,
        batch,
        encoding,
        budget: (budget.weight_bytes, budget.activation_bytes, budget.instruction_bytes),
    };
    if let Some(p) = lookup(&key) {
        return p;
    }
    let p = Arc::new(compile_inference_with(model, dims, batch, encoding, budget));
    insert(key, &p);
    p
}

/// Memoized [`lower_training`].
pub fn lower_training_cached(
    model: &ModelSpec,
    dims: &ArrayDims,
    setup: &TrainingSetup,
) -> Arc<Program> {
    let key = Key::Training {
        model: model.clone(),
        dims: *dims,
        batch: setup.batch,
        encoding: setup.encoding,
        dram_factor_bits: setup.dram_inefficiency_factor.to_bits(),
    };
    if let Some(p) = lookup(&key) {
        return p;
    }
    let p = Arc::new(lower_training(model, dims, setup));
    insert(key, &p);
    p
}

/// A snapshot of the process-wide cache counters.
pub fn stats() -> CacheStats {
    cache().lock().expect("compile cache poisoned").stats
}

/// Drops every resident entry and zeroes the counters (tests).
pub fn clear() {
    let mut c = cache().lock().expect("compile cache poisoned");
    *c = CacheInner::default();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The cache is process-global; tests asserting on its counters
    /// must not interleave.
    fn serial_guard() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        GUARD.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn dims() -> ArrayDims {
        ArrayDims { n: 16, w: 4, m: 8 }
    }

    #[test]
    fn inference_hit_returns_shared_program() {
        let _g = serial_guard();
        clear();
        let model = ModelSpec::mlp_2048x5();
        let budget = BufferBudget::paper_default();
        let a = compile_inference_cached(&model, &dims(), 16, Encoding::Hbfp8, &budget);
        let b = compile_inference_cached(&model, &dims(), 16, Encoding::Hbfp8, &budget);
        assert!(Arc::ptr_eq(&a, &b));
        let s = stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        // And matches the uncached compiler exactly.
        let fresh = compile_inference_with(&model, &dims(), 16, Encoding::Hbfp8, &budget);
        assert_eq!(a.instructions(), fresh.instructions());
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let _g = serial_guard();
        clear();
        let model = ModelSpec::mlp_2048x5();
        let budget = BufferBudget::paper_default();
        let a = compile_inference_cached(&model, &dims(), 16, Encoding::Hbfp8, &budget);
        let b = compile_inference_cached(&model, &dims(), 32, Encoding::Hbfp8, &budget);
        let c = compile_inference_cached(&model, &dims(), 16, Encoding::Bfloat16, &budget);
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(stats().hits, 0);
    }

    #[test]
    fn training_lowering_cached() {
        let _g = serial_guard();
        clear();
        let model = ModelSpec::mlp_2048x5();
        let setup = TrainingSetup::paper_default();
        let a = lower_training_cached(&model, &dims(), &setup);
        let b = lower_training_cached(&model, &dims(), &setup);
        assert!(Arc::ptr_eq(&a, &b));
        let fresh = lower_training(&model, &dims(), &setup);
        assert_eq!(a.instructions(), fresh.instructions());
    }

    #[test]
    fn concurrent_lookups_agree() {
        let _g = serial_guard();
        clear();
        let model = ModelSpec::mlp_2048x5();
        let budget = BufferBudget::paper_default();
        let programs = equinox_par::parallel_map_with(
            8,
            (0..32).collect::<Vec<usize>>(),
            |i| compile_inference_cached(&model, &dims(), 16 + (i % 2), Encoding::Hbfp8, &budget),
        );
        for pair in programs.chunks(2) {
            assert_eq!(pair[0].instructions().len(), pair[1].instructions().len());
        }
        let s = stats();
        assert_eq!(s.hits + s.misses, 32);
        // Two keys, at most 8 concurrently racing misses per key.
        assert!(s.hits >= 16, "{s:?}");
    }
}
