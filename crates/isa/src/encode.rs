//! Binary encoding of the accelerator ISA.
//!
//! Programs are installed into the 32 KB instruction buffer through the
//! host interface (§3.1), which requires a concrete wire format. Each
//! instruction encodes to a fixed 16-byte word: one opcode byte, one
//! modifier byte, and up to three little-endian operand fields. The
//! decoder is total over encoder output (round-trip property-tested) and
//! rejects malformed words with a descriptive error.

use crate::instruction::{BufferKind, Instruction, SimdOpKind};
use crate::layers::GemmMode;

/// Size of one encoded instruction word, bytes.
pub const INSTRUCTION_BYTES: usize = 16;

/// Errors produced by [`decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The input was not a whole number of instruction words.
    TruncatedWord {
        /// Bytes left over.
        remainder: usize,
    },
    /// Unknown opcode byte.
    UnknownOpcode {
        /// The offending opcode.
        opcode: u8,
        /// Word index in the stream.
        index: usize,
    },
    /// Unknown modifier for the given opcode.
    UnknownModifier {
        /// The opcode whose modifier was invalid.
        opcode: u8,
        /// The offending modifier.
        modifier: u8,
        /// Word index in the stream.
        index: usize,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::TruncatedWord { remainder } => {
                write!(f, "truncated instruction word: {remainder} trailing bytes")
            }
            DecodeError::UnknownOpcode { opcode, index } => {
                write!(f, "unknown opcode {opcode:#04x} at word {index}")
            }
            DecodeError::UnknownModifier { opcode, modifier, index } => {
                write!(
                    f,
                    "unknown modifier {modifier:#04x} for opcode {opcode:#04x} at word {index}"
                )
            }
        }
    }
}

impl std::error::Error for DecodeError {}

const OP_MATMUL: u8 = 0x01;
const OP_SIMD: u8 = 0x02;
const OP_LOAD_DRAM: u8 = 0x03;
const OP_STORE_DRAM: u8 = 0x04;
const OP_HOST_IO: u8 = 0x05;
const OP_SYNC: u8 = 0x06;

fn buffer_code(kind: BufferKind) -> u8 {
    match kind {
        BufferKind::Activation => 0,
        BufferKind::Weight => 1,
        BufferKind::Instruction => 2,
        BufferKind::SimdRegisters => 3,
    }
}

fn buffer_from(code: u8) -> Option<BufferKind> {
    match code {
        0 => Some(BufferKind::Activation),
        1 => Some(BufferKind::Weight),
        2 => Some(BufferKind::Instruction),
        3 => Some(BufferKind::SimdRegisters),
        _ => None,
    }
}

fn simd_code(kind: SimdOpKind) -> u8 {
    match kind {
        SimdOpKind::Activation => 0,
        SimdOpKind::Elementwise => 1,
        SimdOpKind::BatchNorm => 2,
        SimdOpKind::Derivative => 3,
        SimdOpKind::Loss => 4,
        SimdOpKind::WeightUpdate => 5,
    }
}

fn simd_from(code: u8) -> Option<SimdOpKind> {
    match code {
        0 => Some(SimdOpKind::Activation),
        1 => Some(SimdOpKind::Elementwise),
        2 => Some(SimdOpKind::BatchNorm),
        3 => Some(SimdOpKind::Derivative),
        4 => Some(SimdOpKind::Loss),
        5 => Some(SimdOpKind::WeightUpdate),
        _ => None,
    }
}

/// Encodes one instruction into its 16-byte word.
pub fn encode_instruction(instruction: &Instruction) -> [u8; INSTRUCTION_BYTES] {
    let mut w = [0u8; INSTRUCTION_BYTES];
    match *instruction {
        Instruction::MatMulTile { rows, k_span, out_span, mode } => {
            w[0] = OP_MATMUL;
            w[1] = match mode {
                GemmMode::VectorMatrix => 0,
                GemmMode::WeightBroadcast => 1,
            };
            w[2..6].copy_from_slice(&(rows as u32).to_le_bytes());
            w[6..10].copy_from_slice(&(k_span as u32).to_le_bytes());
            w[10..14].copy_from_slice(&(out_span as u32).to_le_bytes());
        }
        Instruction::Simd { kind, elems } => {
            w[0] = OP_SIMD;
            w[1] = simd_code(kind);
            w[2..10].copy_from_slice(&(elems as u64).to_le_bytes());
        }
        Instruction::LoadDram { target, bytes } => {
            w[0] = OP_LOAD_DRAM;
            w[1] = buffer_code(target);
            w[2..10].copy_from_slice(&bytes.to_le_bytes());
        }
        Instruction::StoreDram { source, bytes } => {
            w[0] = OP_STORE_DRAM;
            w[1] = buffer_code(source);
            w[2..10].copy_from_slice(&bytes.to_le_bytes());
        }
        Instruction::HostIo { bytes } => {
            w[0] = OP_HOST_IO;
            w[2..10].copy_from_slice(&bytes.to_le_bytes());
        }
        Instruction::Sync => {
            w[0] = OP_SYNC;
        }
    }
    w
}

/// Encodes a sequence of instructions into the installable byte stream.
pub fn encode(instructions: &[Instruction]) -> Vec<u8> {
    let mut out = Vec::with_capacity(instructions.len() * INSTRUCTION_BYTES);
    for i in instructions {
        out.extend_from_slice(&encode_instruction(i));
    }
    out
}

/// Decodes a byte stream back into instructions.
///
/// # Errors
///
/// Returns [`DecodeError`] for truncated input, unknown opcodes, or
/// unknown modifiers.
pub fn decode(bytes: &[u8]) -> Result<Vec<Instruction>, DecodeError> {
    if !bytes.len().is_multiple_of(INSTRUCTION_BYTES) {
        return Err(DecodeError::TruncatedWord { remainder: bytes.len() % INSTRUCTION_BYTES });
    }
    let mut out = Vec::with_capacity(bytes.len() / INSTRUCTION_BYTES);
    for (index, w) in bytes.chunks_exact(INSTRUCTION_BYTES).enumerate() {
        let opcode = w[0];
        let modifier = w[1];
        let u32_at = |o: usize| u32::from_le_bytes(w[o..o + 4].try_into().expect("4 bytes"));
        let u64_at = |o: usize| u64::from_le_bytes(w[o..o + 8].try_into().expect("8 bytes"));
        let instr = match opcode {
            OP_MATMUL => {
                let mode = match modifier {
                    0 => GemmMode::VectorMatrix,
                    1 => GemmMode::WeightBroadcast,
                    _ => return Err(DecodeError::UnknownModifier { opcode, modifier, index }),
                };
                Instruction::MatMulTile {
                    rows: u32_at(2) as usize,
                    k_span: u32_at(6) as usize,
                    out_span: u32_at(10) as usize,
                    mode,
                }
            }
            OP_SIMD => Instruction::Simd {
                kind: simd_from(modifier)
                    .ok_or(DecodeError::UnknownModifier { opcode, modifier, index })?,
                elems: u64_at(2) as usize,
            },
            OP_LOAD_DRAM => Instruction::LoadDram {
                target: buffer_from(modifier)
                    .ok_or(DecodeError::UnknownModifier { opcode, modifier, index })?,
                bytes: u64_at(2),
            },
            OP_STORE_DRAM => Instruction::StoreDram {
                source: buffer_from(modifier)
                    .ok_or(DecodeError::UnknownModifier { opcode, modifier, index })?,
                bytes: u64_at(2),
            },
            OP_HOST_IO => Instruction::HostIo { bytes: u64_at(2) },
            OP_SYNC => Instruction::Sync,
            _ => return Err(DecodeError::UnknownOpcode { opcode, index }),
        };
        out.push(instr);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use equinox_arith::check;

    fn sample_instructions() -> Vec<Instruction> {
        vec![
            Instruction::MatMulTile {
                rows: 186,
                k_span: 558,
                out_span: 558,
                mode: GemmMode::VectorMatrix,
            },
            Instruction::MatMulTile {
                rows: 12544,
                k_span: 147,
                out_span: 64,
                mode: GemmMode::WeightBroadcast,
            },
            Instruction::Simd { kind: SimdOpKind::Derivative, elems: 1 << 20 },
            Instruction::LoadDram { target: BufferKind::Weight, bytes: 16 << 20 },
            Instruction::StoreDram { source: BufferKind::Activation, bytes: 4096 },
            Instruction::HostIo { bytes: 128 },
            Instruction::Sync,
        ]
    }

    #[test]
    fn round_trip_sample() {
        let instrs = sample_instructions();
        let bytes = encode(&instrs);
        assert_eq!(bytes.len(), instrs.len() * INSTRUCTION_BYTES);
        assert_eq!(decode(&bytes).expect("valid stream"), instrs);
    }

    #[test]
    fn truncated_rejected() {
        let mut bytes = encode(&sample_instructions());
        bytes.pop();
        assert_eq!(
            decode(&bytes),
            Err(DecodeError::TruncatedWord { remainder: INSTRUCTION_BYTES - 1 })
        );
    }

    #[test]
    fn unknown_opcode_rejected() {
        let mut bytes = encode(&[Instruction::Sync]);
        bytes[0] = 0xFF;
        assert!(matches!(
            decode(&bytes),
            Err(DecodeError::UnknownOpcode { opcode: 0xFF, index: 0 })
        ));
    }

    #[test]
    fn unknown_modifier_rejected() {
        let mut bytes = encode(&[Instruction::Simd {
            kind: SimdOpKind::Loss,
            elems: 4,
        }]);
        bytes[1] = 0x77;
        let err = decode(&bytes).unwrap_err();
        assert!(matches!(err, DecodeError::UnknownModifier { modifier: 0x77, .. }));
        assert!(err.to_string().contains("modifier"));
    }

    #[test]
    fn full_lstm_program_round_trips() {
        use crate::lower::compile_inference;
        use crate::models::ModelSpec;
        use crate::ArrayDims;
        let dims = ArrayDims { n: 16, w: 4, m: 8 };
        let p = compile_inference(&ModelSpec::lstm_2048_25(), &dims, 16);
        let bytes = encode(p.instructions());
        let decoded = decode(&bytes).expect("compiler output is encodable");
        assert_eq!(decoded, p.instructions());
        // The paper's 32 KB instruction buffer holds 2048 words; bigger
        // programs stream through it (sanity on sizes only).
        assert_eq!(bytes.len() / INSTRUCTION_BYTES, p.len());
    }

    #[test]
    fn round_trip_arbitrary_matmul() {
        check::check(0x656e01, |g| {
            let i = Instruction::MatMulTile {
                rows: g.usize_in(0, u32::MAX as usize),
                k_span: g.usize_in(0, u32::MAX as usize),
                out_span: g.usize_in(0, u32::MAX as usize),
                mode: if g.next_bool() {
                    GemmMode::WeightBroadcast
                } else {
                    GemmMode::VectorMatrix
                },
            };
            assert_eq!(decode(&encode(&[i])).unwrap(), vec![i]);
        });
    }

    #[test]
    fn round_trip_arbitrary_dram() {
        check::check(0x656e02, |g| {
            let bytes = g.next_u64();
            let i = if g.next_bool() {
                Instruction::LoadDram { target: BufferKind::Weight, bytes }
            } else {
                Instruction::StoreDram { source: BufferKind::Activation, bytes }
            };
            assert_eq!(decode(&encode(&[i])).unwrap(), vec![i]);
        });
    }
}
