//! Binary encoding of the accelerator ISA.
//!
//! Programs are installed into the 32 KB instruction buffer through the
//! host interface (§3.1), which requires a concrete wire format. Each
//! instruction encodes to one or more fixed 16-byte words: one opcode
//! byte, one modifier byte, and up to three little-endian operand
//! fields per word. A tile multiply needs three buffer regions (six
//! 32-bit fields) on top of its geometry, so it occupies three words:
//! the geometry word (opcode `0x01`) followed by two operand-extension
//! words (opcode `0x07`, modifiers 0 and 1). All other instructions fit
//! in a single word. The decoder is total over encoder output
//! (round-trip property-tested) and rejects malformed words — including
//! detached or missing operand-extension words — with a descriptive
//! error.
//!
//! Region offsets and extents are encoded as `u32`: the largest on-chip
//! buffer (the 50 MB weight buffer) is far below 4 GiB. SIMD element
//! counts are likewise `u32` on the wire; lowering never exceeds that,
//! and the `EQX0301` encoding-fidelity pass flags any hand-built
//! instruction whose fields would not survive the round trip.

use crate::instruction::{BufferKind, Instruction, Region, SimdOpKind};
use crate::layers::GemmMode;

/// Size of one encoded instruction word, bytes.
pub const INSTRUCTION_BYTES: usize = 16;

/// Errors produced by [`decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The input was not a whole number of instruction words.
    TruncatedWord {
        /// Bytes left over.
        remainder: usize,
    },
    /// Unknown opcode byte.
    UnknownOpcode {
        /// The offending opcode.
        opcode: u8,
        /// Word index in the stream.
        index: usize,
    },
    /// Unknown modifier for the given opcode.
    UnknownModifier {
        /// The opcode whose modifier was invalid.
        opcode: u8,
        /// The offending modifier.
        modifier: u8,
        /// Word index in the stream.
        index: usize,
    },
    /// A tile-multiply geometry word was not followed by its two
    /// operand-extension words (opcode `0x07`, modifiers 0 then 1).
    MissingOperandWord {
        /// Word index of the geometry word.
        index: usize,
    },
    /// An operand-extension word appeared without a preceding
    /// tile-multiply geometry word.
    StrayOperandWord {
        /// Word index of the stray word.
        index: usize,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::TruncatedWord { remainder } => {
                write!(f, "truncated instruction word: {remainder} trailing bytes")
            }
            DecodeError::UnknownOpcode { opcode, index } => {
                write!(f, "unknown opcode {opcode:#04x} at word {index}")
            }
            DecodeError::UnknownModifier { opcode, modifier, index } => {
                write!(
                    f,
                    "unknown modifier {modifier:#04x} for opcode {opcode:#04x} at word {index}"
                )
            }
            DecodeError::MissingOperandWord { index } => {
                write!(
                    f,
                    "tile multiply at word {index} is missing its operand-extension words"
                )
            }
            DecodeError::StrayOperandWord { index } => {
                write!(
                    f,
                    "operand-extension word at {index} without a preceding tile multiply"
                )
            }
        }
    }
}

impl std::error::Error for DecodeError {}

const OP_MATMUL: u8 = 0x01;
const OP_SIMD: u8 = 0x02;
const OP_LOAD_DRAM: u8 = 0x03;
const OP_STORE_DRAM: u8 = 0x04;
const OP_HOST_IO: u8 = 0x05;
const OP_SYNC: u8 = 0x06;
/// Operand-extension word for [`OP_MATMUL`] (two per tile multiply).
const OP_MATMUL_OPS: u8 = 0x07;

fn buffer_code(kind: BufferKind) -> u8 {
    match kind {
        BufferKind::Activation => 0,
        BufferKind::Weight => 1,
        BufferKind::Instruction => 2,
        BufferKind::SimdRegisters => 3,
    }
}

fn buffer_from(code: u8) -> Option<BufferKind> {
    match code {
        0 => Some(BufferKind::Activation),
        1 => Some(BufferKind::Weight),
        2 => Some(BufferKind::Instruction),
        3 => Some(BufferKind::SimdRegisters),
        _ => None,
    }
}

fn simd_code(kind: SimdOpKind) -> u8 {
    match kind {
        SimdOpKind::Activation => 0,
        SimdOpKind::Elementwise => 1,
        SimdOpKind::BatchNorm => 2,
        SimdOpKind::Derivative => 3,
        SimdOpKind::Loss => 4,
        SimdOpKind::WeightUpdate => 5,
    }
}

fn simd_from(code: u8) -> Option<SimdOpKind> {
    match code {
        0 => Some(SimdOpKind::Activation),
        1 => Some(SimdOpKind::Elementwise),
        2 => Some(SimdOpKind::BatchNorm),
        3 => Some(SimdOpKind::Derivative),
        4 => Some(SimdOpKind::Loss),
        5 => Some(SimdOpKind::WeightUpdate),
        _ => None,
    }
}

fn put_u32(w: &mut [u8; INSTRUCTION_BYTES], offset: usize, value: u32) {
    w[offset..offset + 4].copy_from_slice(&value.to_le_bytes());
}

/// Appends the word(s) for one instruction.
fn encode_into(out: &mut Vec<u8>, instruction: &Instruction) {
    let mut w = [0u8; INSTRUCTION_BYTES];
    match *instruction {
        Instruction::MatMulTile { rows, k_span, out_span, mode, weights, input, output } => {
            w[0] = OP_MATMUL;
            w[1] = match mode {
                GemmMode::VectorMatrix => 0,
                GemmMode::WeightBroadcast => 1,
            };
            put_u32(&mut w, 2, rows as u32);
            put_u32(&mut w, 6, k_span as u32);
            put_u32(&mut w, 10, out_span as u32);
            out.extend_from_slice(&w);

            let mut b = [0u8; INSTRUCTION_BYTES];
            b[0] = OP_MATMUL_OPS;
            b[1] = 0;
            put_u32(&mut b, 2, weights.offset as u32);
            put_u32(&mut b, 6, weights.bytes as u32);
            put_u32(&mut b, 10, input.offset as u32);
            out.extend_from_slice(&b);

            let mut c = [0u8; INSTRUCTION_BYTES];
            c[0] = OP_MATMUL_OPS;
            c[1] = 1;
            put_u32(&mut c, 2, input.bytes as u32);
            put_u32(&mut c, 6, output.offset as u32);
            put_u32(&mut c, 10, output.bytes as u32);
            out.extend_from_slice(&c);
        }
        Instruction::Simd { kind, elems, region } => {
            w[0] = OP_SIMD;
            w[1] = simd_code(kind);
            put_u32(&mut w, 2, elems as u32);
            put_u32(&mut w, 6, region.offset as u32);
            put_u32(&mut w, 10, region.bytes as u32);
            out.extend_from_slice(&w);
        }
        Instruction::LoadDram { target, region } => {
            w[0] = OP_LOAD_DRAM;
            w[1] = buffer_code(target);
            put_u32(&mut w, 2, region.offset as u32);
            put_u32(&mut w, 6, region.bytes as u32);
            out.extend_from_slice(&w);
        }
        Instruction::StoreDram { source, region } => {
            w[0] = OP_STORE_DRAM;
            w[1] = buffer_code(source);
            put_u32(&mut w, 2, region.offset as u32);
            put_u32(&mut w, 6, region.bytes as u32);
            out.extend_from_slice(&w);
        }
        Instruction::HostIo { bytes } => {
            w[0] = OP_HOST_IO;
            w[2..10].copy_from_slice(&bytes.to_le_bytes());
            out.extend_from_slice(&w);
        }
        Instruction::Sync => {
            w[0] = OP_SYNC;
            out.extend_from_slice(&w);
        }
    }
}

/// Encodes a sequence of instructions into the installable byte stream.
pub fn encode(instructions: &[Instruction]) -> Vec<u8> {
    let words: usize = instructions.iter().map(Instruction::encoded_words).sum();
    let mut out = Vec::with_capacity(words * INSTRUCTION_BYTES);
    for i in instructions {
        encode_into(&mut out, i);
    }
    out
}

/// Decodes a byte stream back into instructions.
///
/// # Errors
///
/// Returns [`DecodeError`] for truncated input, unknown opcodes,
/// unknown modifiers, or detached/missing operand-extension words.
pub fn decode(bytes: &[u8]) -> Result<Vec<Instruction>, DecodeError> {
    if !bytes.len().is_multiple_of(INSTRUCTION_BYTES) {
        return Err(DecodeError::TruncatedWord { remainder: bytes.len() % INSTRUCTION_BYTES });
    }
    let words: Vec<&[u8]> = bytes.chunks_exact(INSTRUCTION_BYTES).collect();
    let mut out = Vec::with_capacity(words.len());
    let mut index = 0;
    while index < words.len() {
        let w = words[index];
        let opcode = w[0];
        let modifier = w[1];
        let u32_at =
            |w: &[u8], o: usize| u32::from_le_bytes(w[o..o + 4].try_into().expect("4 bytes"));
        let u64_at =
            |w: &[u8], o: usize| u64::from_le_bytes(w[o..o + 8].try_into().expect("8 bytes"));
        let instr = match opcode {
            OP_MATMUL => {
                let mode = match modifier {
                    0 => GemmMode::VectorMatrix,
                    1 => GemmMode::WeightBroadcast,
                    _ => return Err(DecodeError::UnknownModifier { opcode, modifier, index }),
                };
                let (Some(b), Some(c)) = (words.get(index + 1), words.get(index + 2)) else {
                    return Err(DecodeError::MissingOperandWord { index });
                };
                if b[0] != OP_MATMUL_OPS || b[1] != 0 || c[0] != OP_MATMUL_OPS || c[1] != 1 {
                    return Err(DecodeError::MissingOperandWord { index });
                }
                let instr = Instruction::MatMulTile {
                    rows: u32_at(w, 2) as usize,
                    k_span: u32_at(w, 6) as usize,
                    out_span: u32_at(w, 10) as usize,
                    mode,
                    weights: Region::new(u32_at(b, 2) as u64, u32_at(b, 6) as u64),
                    input: Region::new(u32_at(b, 10) as u64, u32_at(c, 2) as u64),
                    output: Region::new(u32_at(c, 6) as u64, u32_at(c, 10) as u64),
                };
                index += 2;
                instr
            }
            OP_MATMUL_OPS => return Err(DecodeError::StrayOperandWord { index }),
            OP_SIMD => Instruction::Simd {
                kind: simd_from(modifier)
                    .ok_or(DecodeError::UnknownModifier { opcode, modifier, index })?,
                elems: u32_at(w, 2) as usize,
                region: Region::new(u32_at(w, 6) as u64, u32_at(w, 10) as u64),
            },
            OP_LOAD_DRAM => Instruction::LoadDram {
                target: buffer_from(modifier)
                    .ok_or(DecodeError::UnknownModifier { opcode, modifier, index })?,
                region: Region::new(u32_at(w, 2) as u64, u32_at(w, 6) as u64),
            },
            OP_STORE_DRAM => Instruction::StoreDram {
                source: buffer_from(modifier)
                    .ok_or(DecodeError::UnknownModifier { opcode, modifier, index })?,
                region: Region::new(u32_at(w, 2) as u64, u32_at(w, 6) as u64),
            },
            OP_HOST_IO => Instruction::HostIo { bytes: u64_at(w, 2) },
            OP_SYNC => Instruction::Sync,
            _ => return Err(DecodeError::UnknownOpcode { opcode, index }),
        };
        out.push(instr);
        index += 1;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use equinox_arith::check;

    fn sample_instructions() -> Vec<Instruction> {
        vec![
            Instruction::MatMulTile {
                rows: 186,
                k_span: 558,
                out_span: 558,
                mode: GemmMode::VectorMatrix,
                weights: Region::new(0x10000, 558 * 558),
                input: Region::new(0, 186 * 558),
                output: Region::new(0x50000, 186 * 558),
            },
            Instruction::MatMulTile {
                rows: 12544,
                k_span: 147,
                out_span: 64,
                mode: GemmMode::WeightBroadcast,
                weights: Region::new(0, 147 * 64),
                input: Region::unaddressed(),
                output: Region::new(0x100, 12544 * 64),
            },
            Instruction::simd(SimdOpKind::Derivative, 1 << 20),
            Instruction::LoadDram { target: BufferKind::Weight, region: Region::new(0, 16 << 20) },
            Instruction::StoreDram {
                source: BufferKind::Activation,
                region: Region::new(1 << 20, 4096),
            },
            Instruction::HostIo { bytes: 128 },
            Instruction::Sync,
        ]
    }

    #[test]
    fn round_trip_sample() {
        let instrs = sample_instructions();
        let bytes = encode(&instrs);
        let words: usize = instrs.iter().map(Instruction::encoded_words).sum();
        assert_eq!(bytes.len(), words * INSTRUCTION_BYTES);
        assert_eq!(decode(&bytes).expect("valid stream"), instrs);
    }

    #[test]
    fn truncated_rejected() {
        let mut bytes = encode(&sample_instructions());
        bytes.pop();
        assert_eq!(
            decode(&bytes),
            Err(DecodeError::TruncatedWord { remainder: INSTRUCTION_BYTES - 1 })
        );
    }

    #[test]
    fn unknown_opcode_rejected() {
        let mut bytes = encode(&[Instruction::Sync]);
        bytes[0] = 0xFF;
        assert!(matches!(
            decode(&bytes),
            Err(DecodeError::UnknownOpcode { opcode: 0xFF, index: 0 })
        ));
    }

    #[test]
    fn unknown_modifier_rejected() {
        let mut bytes = encode(&[Instruction::simd(SimdOpKind::Loss, 4)]);
        bytes[1] = 0x77;
        let err = decode(&bytes).unwrap_err();
        assert!(matches!(err, DecodeError::UnknownModifier { modifier: 0x77, .. }));
        assert!(err.to_string().contains("modifier"));
    }

    #[test]
    fn matmul_missing_operand_words_rejected() {
        let full = encode(&[Instruction::matmul(4, 8, 16, GemmMode::VectorMatrix)]);
        // Drop the second extension word entirely.
        let truncated = &full[..2 * INSTRUCTION_BYTES];
        assert_eq!(decode(truncated), Err(DecodeError::MissingOperandWord { index: 0 }));
        // Replace the first extension word with a Sync.
        let mut swapped = full.clone();
        swapped[INSTRUCTION_BYTES..2 * INSTRUCTION_BYTES]
            .copy_from_slice(&encode(&[Instruction::Sync]));
        assert_eq!(decode(&swapped), Err(DecodeError::MissingOperandWord { index: 0 }));
    }

    #[test]
    fn stray_operand_word_rejected() {
        let full = encode(&[Instruction::matmul(4, 8, 16, GemmMode::VectorMatrix)]);
        // An extension word with no geometry word before it.
        let stray = &full[INSTRUCTION_BYTES..];
        assert_eq!(decode(stray), Err(DecodeError::StrayOperandWord { index: 0 }));
    }

    #[test]
    fn full_lstm_program_round_trips() {
        use crate::lower::compile_inference;
        use crate::models::ModelSpec;
        use crate::ArrayDims;
        let dims = ArrayDims { n: 16, w: 4, m: 8 };
        let p = compile_inference(&ModelSpec::lstm_2048_25(), &dims, 16);
        let bytes = encode(p.instructions());
        let decoded = decode(&bytes).expect("compiler output is encodable");
        assert_eq!(decoded, p.instructions());
        // The paper's 32 KB instruction buffer holds 2048 words; bigger
        // programs stream through it (sanity on sizes only).
        assert_eq!(bytes.len() / INSTRUCTION_BYTES, p.encoded_words());
    }

    fn arbitrary_region(g: &mut equinox_arith::SplitMix64) -> Region {
        Region::new(g.usize_in(0, u32::MAX as usize) as u64, g.usize_in(0, u32::MAX as usize) as u64)
    }

    #[test]
    fn round_trip_arbitrary_matmul() {
        check::check(0x656e01, |g| {
            let i = Instruction::MatMulTile {
                rows: g.usize_in(0, u32::MAX as usize),
                k_span: g.usize_in(0, u32::MAX as usize),
                out_span: g.usize_in(0, u32::MAX as usize),
                mode: if g.next_bool() {
                    GemmMode::WeightBroadcast
                } else {
                    GemmMode::VectorMatrix
                },
                weights: arbitrary_region(g),
                input: arbitrary_region(g),
                output: arbitrary_region(g),
            };
            assert_eq!(decode(&encode(&[i])).unwrap(), vec![i]);
        });
    }

    #[test]
    fn round_trip_arbitrary_dram() {
        check::check(0x656e02, |g| {
            let region = arbitrary_region(g);
            let i = if g.next_bool() {
                Instruction::LoadDram { target: BufferKind::Weight, region }
            } else {
                Instruction::StoreDram { source: BufferKind::Activation, region }
            };
            assert_eq!(decode(&encode(&[i])).unwrap(), vec![i]);
        });
    }

    #[test]
    fn round_trip_arbitrary_simd() {
        check::check(0x656e03, |g| {
            let kinds = [
                SimdOpKind::Activation,
                SimdOpKind::Elementwise,
                SimdOpKind::BatchNorm,
                SimdOpKind::Derivative,
                SimdOpKind::Loss,
                SimdOpKind::WeightUpdate,
            ];
            let i = Instruction::Simd {
                kind: kinds[g.usize_in(0, kinds.len() - 1)],
                elems: g.usize_in(0, u32::MAX as usize),
                region: arbitrary_region(g),
            };
            assert_eq!(decode(&encode(&[i])).unwrap(), vec![i]);
        });
    }
}
