//! # equinox-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation.
//!
//! * `cargo bench -p equinox-bench --features paper-bench` runs one
//!   self-timed benchmark per paper artifact at reduced (`Quick`)
//!   scale, timing the experiment pipelines end to end. The benches are
//!   gated behind the non-default `paper-bench` feature so default
//!   builds stay fast and fully offline.
//! * `cargo run --release -p equinox-bench --bin regen-results [ids…]`
//!   regenerates the artifacts at full scale and prints the paper-style
//!   rows/series. With no arguments it regenerates everything.
//!
//! See `DESIGN.md` for the per-experiment index and `EXPERIMENTS.md`
//! for paper-vs-measured numbers.

pub mod harness;

/// The experiment identifiers accepted by `regen-results`.
pub const EXPERIMENT_IDS: [&str; 15] = [
    "fig2", "fig6", "table1", "fig7", "fig8", "fig9", "table2", "table3", "fig10", "fig11",
    "software", "ablation", "diurnal", "fault", "checks",
];

/// True if `id` names a known experiment.
pub fn is_known_experiment(id: &str) -> bool {
    EXPERIMENT_IDS.contains(&id) || id == "fig2a" || id == "fig2b" || id == "fig7a" || id == "fig7b"
        || id == "fig11a" || id == "fig11b" || id == "fig11c"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_known() {
        assert!(is_known_experiment("fig2"));
        assert!(is_known_experiment("fig7b"));
        assert!(is_known_experiment("table3"));
        assert!(is_known_experiment("fault"));
        assert!(is_known_experiment("checks"));
        assert!(!is_known_experiment("fig99"));
    }
}
