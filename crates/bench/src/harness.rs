//! A self-timed micro-benchmark harness (Criterion substitute).
//!
//! The offline build cannot depend on `criterion`, and the paper-artifact
//! benches time whole experiment pipelines (milliseconds to seconds per
//! iteration), where wall-clock min/mean over a handful of samples is
//! plenty. Results print in a `group/name  min … mean … max` line per
//! benchmark.

use std::time::Instant;

/// Times `f` for `samples` iterations (after one untimed warm-up) and
/// prints min/mean/max wall-clock seconds. The closure's result is
/// returned from the last timed iteration so benches can assert on it.
pub fn time<T>(group: &str, name: &str, samples: u32, mut f: impl FnMut() -> T) -> T {
    assert!(samples > 0, "need at least one sample");
    let mut result = f(); // warm-up
    let mut times = Vec::with_capacity(samples as usize);
    for _ in 0..samples {
        let start = Instant::now();
        result = f();
        times.push(start.elapsed().as_secs_f64());
    }
    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = times.iter().cloned().fold(0.0f64, f64::max);
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    println!("{group}/{name}: min {min:.4}s  mean {mean:.4}s  max {max:.4}s  ({samples} samples)");
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_and_returns_last_result() {
        let mut count = 0;
        let r = time("test", "counter", 3, || {
            count += 1;
            count
        });
        // One warm-up + three timed iterations.
        assert_eq!(count, 4);
        assert_eq!(r, 4);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_panics() {
        time("test", "empty", 0, || ());
    }
}
