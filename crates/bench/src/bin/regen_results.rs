//! Regenerates the paper's tables and figures at full scale.
//!
//! Usage: `cargo run --release -p equinox-bench --bin regen-results
//! [--quick] [fig2|fig6|table1|fig7|…|fault|checks]...`
//!
//! With no ids, everything is regenerated. `--quick` switches to the
//! reduced [`ExperimentScale::Quick`] grids (the CI fault-injection
//! smoke job runs `--quick fault`). Output goes to stdout and, for the
//! figure CSVs and JSON artifacts, into `results/`.

use equinox_core::experiments::{
    ablation, diurnal, fault_sweep, fig10, fig11, fig2, fig6, fig7, fig8, fig9,
    software_sched, table1, table2, table3,
};
use equinox_core::ExperimentScale;
use std::fs;
use std::time::Instant;

fn write_result(name: &str, content: &str) {
    let _ = fs::create_dir_all("results");
    let path = format!("results/{name}");
    match fs::write(&path, content) {
        Ok(()) => println!("  [wrote {path}]"),
        Err(e) => eprintln!("  [failed to write {path}: {e}]"),
    }
}

fn banner(id: &str, title: &str) {
    println!("\n=== {id}: {title} ===");
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    args.retain(|a| a != "--quick");
    let selected = |id: &str| {
        args.is_empty() || args.iter().any(|a| a == id || a.starts_with(id))
    };
    let scale = if quick { ExperimentScale::Quick } else { ExperimentScale::Full };
    let start = Instant::now();

    if selected("fig2") {
        banner("fig2", "hbfp8 vs fp32 convergence (Figure 2)");
        let t = Instant::now();
        let fig = fig2::run(scale);
        println!("{fig}");
        let mut csv = String::from("task,encoding,epoch,train_loss,val_metric\n");
        for (task, curves) in [
            ("classification", &fig.classification),
            ("language", &fig.language),
            ("lstm_bptt", &fig.lstm),
        ] {
            for c in curves {
                for p in &c.points {
                    csv.push_str(&format!(
                        "{task},{},{},{},{}\n",
                        c.label, p.epoch, p.train_loss, p.val_metric
                    ));
                }
            }
        }
        write_result("fig2_convergence.csv", &csv);
        println!("  [{:.1}s]", t.elapsed().as_secs_f64());
    }

    if selected("fig6") {
        banner("fig6", "design-space scatter (Figure 6)");
        let t = Instant::now();
        let fig = fig6::run();
        println!("{fig}");
        write_result("fig6a_hbfp8.csv", &fig.hbfp8_csv);
        write_result("fig6b_bfloat16.csv", &fig.bf16_csv);
        println!("  [{:.1}s]", t.elapsed().as_secs_f64());
    }

    if selected("table1") {
        banner("table1", "Pareto-optimal designs (Table 1)");
        let t = Instant::now();
        let table = table1::run();
        println!("{table}");
        write_result("table1_pareto.txt", &table.to_string());
        println!("  [{:.1}s]", t.elapsed().as_secs_f64());
    }

    if selected("fig7") {
        banner("fig7", "inference tail latency vs throughput (Figure 7)");
        let t = Instant::now();
        for encoding in [
            equinox_arith::Encoding::Hbfp8,
            equinox_arith::Encoding::Bfloat16,
        ] {
            let fig = fig7::run(encoding, scale);
            println!("{fig}");
            let mut csv = String::from("config,load,inference_tops,p99_ms\n");
            for s in &fig.series {
                for p in &s.points {
                    csv.push_str(&format!(
                        "{},{},{},{}\n",
                        s.name, p.load, p.inference_tops, p.p99_ms
                    ));
                }
            }
            let panel = if encoding == equinox_arith::Encoding::Hbfp8 { "a" } else { "b" };
            write_result(&format!("fig7{panel}_{encoding}.csv"), &csv);
        }
        println!("  [{:.1}s]", t.elapsed().as_secs_f64());
    }

    if selected("fig8") {
        banner("fig8", "cycle breakdown (Figure 8)");
        let t = Instant::now();
        let fig = fig8::run(scale);
        println!("{fig}");
        let mut csv = String::from("load,config,working,dummy,idle,other\n");
        for b in &fig.bars {
            csv.push_str(&format!(
                "{},{},{},{},{},{}\n",
                b.load,
                if b.with_training { "Inf+Train" } else { "Inf" },
                b.breakdown.working,
                b.breakdown.dummy,
                b.breakdown.idle,
                b.breakdown.other
            ));
        }
        write_result("fig8_breakdown.csv", &csv);
        println!("  [{:.1}s]", t.elapsed().as_secs_f64());
    }

    if selected("fig9") {
        banner("fig9", "training throughput vs inference load (Figure 9)");
        let t = Instant::now();
        let fig = fig9::run(scale);
        println!("{fig}");
        for name in ["Equinox_min", "Equinox_50us", "Equinox_500us", "Equinox_none"] {
            if let Some(frac) = fig.peak_fraction(name) {
                println!("  {name}: {:.0}% of the dedicated-accelerator bound", frac * 100.0);
            }
        }
        let mut csv = String::from("config,load,training_tops\n");
        for s in &fig.series {
            for p in &s.points {
                csv.push_str(&format!("{},{},{}\n", s.name, p.load, p.training_tops));
            }
        }
        write_result("fig9_training.csv", &csv);
        println!("  [{:.1}s]", t.elapsed().as_secs_f64());
    }

    if selected("table2") {
        banner("table2", "workload sensitivity (Table 2, + MLP/Transformer extension)");
        let t = Instant::now();
        let table = table2::run_extended(scale);
        println!("{table}");
        write_result("table2_workloads.txt", &table.to_string());
        println!("  [{:.1}s]", t.elapsed().as_secs_f64());
    }

    if selected("table3") {
        banner("table3", "area and power (Table 3)");
        let t = Instant::now();
        let report = table3::run();
        println!("{report}");
        let (ca, cp) = report.controller_overhead();
        let (ea, ep) = report.encoding_overhead();
        println!(
            "\n  controller overhead: {:.2}% area, {:.2}% power (paper: <1%)",
            ca * 100.0,
            cp * 100.0
        );
        println!(
            "  encoding overhead:   {:.1}% area, {:.1}% power (paper: 4% / 13%)",
            ea * 100.0,
            ep * 100.0
        );
        write_result("table3_area_power.txt", &report.to_string());
        println!("  [{:.1}s]", t.elapsed().as_secs_f64());
    }

    if selected("fig10") {
        banner("fig10", "scheduling policies (Figure 10)");
        let t = Instant::now();
        let fig = fig10::run(scale);
        println!("{fig}");
        let mut csv = String::from("policy,load,inference_tops,p99_ms,training_tops\n");
        for s in &fig.series {
            for p in &s.points {
                csv.push_str(&format!(
                    "{},{},{},{},{}\n",
                    s.name, p.load, p.inference_tops, p.p99_ms, p.training_tops
                ));
            }
        }
        write_result("fig10_scheduling.csv", &csv);
        println!("  [{:.1}s]", t.elapsed().as_secs_f64());
    }

    if selected("fig11") {
        banner("fig11", "adaptive batching (Figure 11)");
        let t = Instant::now();
        let fig = fig11::run(scale);
        println!("{fig}");
        let mut csv =
            String::from("panel,series,load,inference_tops,p99_ms,training_tops\n");
        for (panel, series) in [
            ("a", &fig.panel_a),
            ("b", &fig.panel_b),
            ("c", &fig.panel_c),
        ] {
            for s in series {
                for p in &s.points {
                    csv.push_str(&format!(
                        "{panel},{},{},{},{},{}\n",
                        s.name, p.load, p.inference_tops, p.p99_ms, p.training_tops
                    ));
                }
            }
        }
        write_result("fig11_batching.csv", &csv);
        println!("  [{:.1}s]", t.elapsed().as_secs_f64());
    }

    if selected("software") {
        banner("software", "software vs hardware scheduling (§6 text)");
        let t = Instant::now();
        let study = software_sched::run(scale);
        println!("{study}");
        write_result("software_scheduling.txt", &study.to_string());
        println!("  [{:.1}s]", t.elapsed().as_secs_f64());
    }

    if selected("diurnal") {
        banner("diurnal", "training for free over a day (extension)");
        let t = Instant::now();
        let d = diurnal::run(scale);
        println!("{d}");
        write_result("diurnal.txt", &d.to_string());
        println!("  [{:.1}s]", t.elapsed().as_secs_f64());
    }

    if selected("ablation") {
        banner("ablation", "design-choice ablations (extensions)");
        let t = Instant::now();
        let a = ablation::run(scale);
        println!("{a}");
        write_result("ablations.txt", &a.to_string());
        println!("  [{:.1}s]", t.elapsed().as_secs_f64());
    }

    if selected("fault") {
        banner("fault", "fault injection × graceful degradation (extension)");
        let t = Instant::now();
        let sweep = fault_sweep::run(scale);
        println!("{sweep}");
        write_result("fault_sweep.json", &sweep.to_json());
        println!("  [{:.1}s]", t.elapsed().as_secs_f64());
        // The CI smoke gate: a panic anywhere above already failed the
        // run; additionally fail on SLO violations in the no-fault
        // baseline or degradation configs rejected by equinox-check.
        if !sweep.baseline_is_clean() {
            eprintln!("fault: no-fault baseline violated the SLO");
            std::process::exit(1);
        }
        if sweep.has_check_errors() {
            eprintln!("fault: a degradation policy failed the equinox-check lints");
            std::process::exit(1);
        }
    }

    if selected("checks") {
        banner("checks", "equinox-check verdicts for the drivers' configurations");
        let t = Instant::now();
        use equinox_core::Equinox;
        use equinox_isa::models::ModelSpec;
        use equinox_model::LatencyConstraint;
        // One verdict per (driver, design, workload) the experiment
        // drivers exercise; regenerated alongside the artifacts so the
        // static-analysis state of every published number is recorded.
        let grid: [(&str, LatencyConstraint, ModelSpec, usize); 7] = [
            ("fig7/fig8/fig10/fig11", LatencyConstraint::Micros(500), ModelSpec::lstm_2048_25(), 0),
            ("fig9", LatencyConstraint::Micros(50), ModelSpec::lstm_2048_25(), 0),
            ("fig9/min", LatencyConstraint::MinLatency, ModelSpec::lstm_2048_25(), 0),
            ("table2/gru", LatencyConstraint::Micros(500), ModelSpec::gru_2816_1500(), 0),
            ("table2/resnet", LatencyConstraint::Micros(500), ModelSpec::resnet50(), 8),
            ("table2/mlp", LatencyConstraint::Micros(500), ModelSpec::mlp_2048x5(), 0),
            ("diurnal/fault", LatencyConstraint::Micros(500), ModelSpec::lstm_2048_25(), 0),
        ];
        let mut check_errors = 0usize;
        let mut json = String::from("{\"tool\":\"regen-results\",\"reports\":[");
        for (i, (driver, constraint, model, batch)) in grid.iter().enumerate() {
            let eq = Equinox::build(equinox_arith::Encoding::Hbfp8, *constraint)
                .expect("paper designs exist");
            let batch = if *batch == 0 { eq.dims().n } else { *batch };
            let report = eq.check(model, batch);
            println!(
                "  {driver}: {} error(s), {} warning(s)",
                report.error_count(),
                report.warning_count()
            );
            check_errors += report.error_count();
            if i > 0 {
                json.push(',');
            }
            json.push_str(&format!(
                "{{\"driver\":\"{driver}\",\"report\":{}}}",
                report.to_json()
            ));
        }
        // The training lowerings behind every "training for free" number:
        // one full backward-pass + weight-update program per paper model
        // on the 500 µs design, vetted by the operand-level dataflow
        // pass. The GRU's 1500-step unroll exceeds the facade's default
        // analysis cap, so these rows use one large enough that nothing
        // is skipped.
        let eq = Equinox::build(equinox_arith::Encoding::Hbfp8, LatencyConstraint::Micros(500))
            .expect("paper designs exist");
        for model in [
            ModelSpec::lstm_2048_25(),
            ModelSpec::gru_2816_1500(),
            ModelSpec::resnet50(),
            ModelSpec::mlp_2048x5(),
        ] {
            let report = eq.check_training(&model, 16_000_000);
            println!(
                "  training/{}: {} error(s), {} warning(s)",
                model.name(),
                report.error_count(),
                report.warning_count()
            );
            check_errors += report.error_count();
            json.push_str(&format!(
                ",{{\"driver\":\"training/{}\",\"report\":{}}}",
                model.name(),
                report.to_json()
            ));
        }
        json.push_str("]}");
        write_result("driver_checks.json", &json);
        println!("  [{:.1}s]", t.elapsed().as_secs_f64());
        if check_errors > 0 {
            eprintln!("checks: {check_errors} error-severity diagnostic(s) in driver configurations");
            std::process::exit(1);
        }
    }

    let elapsed = start.elapsed().as_secs_f64();
    println!("\nAll selected experiments done in {elapsed:.1}s.");
    if quick {
        // The CI smoke job runs `--quick`; a blowup here means a grid
        // accidentally regained full scale.
        let budget: f64 = std::env::var("EQUINOX_QUICK_BUDGET_S")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(900.0);
        if elapsed > budget {
            eprintln!("--quick run took {elapsed:.1}s, over the {budget:.0}s smoke budget");
            std::process::exit(1);
        }
    }
}
