//! Regenerates the paper's tables and figures at full scale.
//!
//! Usage: `cargo run --release -p equinox-bench --bin regen-results
//! [--quick] [fig2|fig6|table1|fig7|…|fault|fleet|serve|fitted|checks]...`
//!
//! With no ids, everything is regenerated. `--quick` switches to the
//! reduced [`ExperimentScale::Quick`] grids (the CI fault-injection
//! smoke job runs `--quick fault`). Output goes to stdout and, for the
//! figure CSVs and JSON artifacts, into `results/`.
//!
//! ## Parallel execution and determinism
//!
//! The selected experiments are independent, so they run concurrently
//! on the `equinox-par` pool (`EQUINOX_THREADS` sizes it; `1` forces
//! serial). Each job renders its human log and its `results/` payloads
//! into memory; the main thread then prints logs and writes files in
//! the canonical experiment order, so stdout and every artifact are
//! byte-identical at any thread count. Wall-clock readings land in
//! `results/bench_timings.json` — the one artifact exempt from the
//! bit-identical rule, since it records timings of this very run.
//!
//! ## Quick-run budgets
//!
//! Under `--quick` every experiment has a per-id wall-clock budget
//! (`EQUINOX_QUICK_BUDGET_<ID>_S` overrides one id; the coarse
//! `EQUINOX_QUICK_BUDGET_S` overrides all of them uniformly). A
//! summary table prints on exit and only the offending ids fail the
//! run, so a CI blowup names the experiment that regained full scale.

use equinox_core::experiments::{
    ablation, allreduce, bounds_calibration, diurnal, fault_sweep, fig10, fig11, fig2, fig6,
    fig7, fig8, fig9, fitted, fleet, numerics, serve, software_sched, table1, table2, table3,
};
use equinox_core::ExperimentScale;
use std::fmt::Write as _;
use std::fs;
use std::time::Instant;

/// What one experiment job produced, rendered but not yet emitted.
struct JobBody {
    /// The human log the serial driver would have printed.
    log: String,
    /// `results/` payloads as `(file name, content)`.
    files: Vec<(String, String)>,
    /// A gate failure (SLO violation, check errors, …); reported after
    /// every job has run instead of exiting mid-run.
    failure: Option<String>,
    /// Pre-rendered JSON rows for the `comparisons` array of
    /// `bench_timings.json` (wall-clock comparisons a job measured
    /// itself; timing data, so exempt from the byte-identity contract
    /// like the rest of that file).
    comparisons: Vec<String>,
}

/// One selected experiment, ready to run on any worker.
struct Job {
    id: &'static str,
    title: &'static str,
    run: Box<dyn FnOnce() -> JobBody + Send>,
}

/// A completed job, in canonical order.
struct JobResult {
    id: &'static str,
    title: &'static str,
    body: JobBody,
    wall_s: f64,
}

fn write_result(name: &str, content: &str) {
    let _ = fs::create_dir_all("results");
    let path = format!("results/{name}");
    match fs::write(&path, content) {
        Ok(()) => println!("  [wrote {path}]"),
        Err(e) => eprintln!("  [failed to write {path}: {e}]"),
    }
}

/// Default `--quick` wall-clock budget per experiment id, seconds.
/// Sized ~3× the observed quick runtimes so only a grid that
/// accidentally regained full scale trips them.
fn default_quick_budget_s(id: &str) -> f64 {
    match id {
        "fig2" => 240.0,
        "fig6" | "table1" | "fig8" | "software" | "diurnal" => 60.0,
        "fig7" | "fig9" | "table2" | "fig10" => 90.0,
        "table3" => 15.0,
        "bounds" | "numerics" => 30.0,
        "fig11" | "ablation" | "fault" | "fleet" | "serve" | "fitted" | "allreduce" => 120.0,
        "checks" => 180.0,
        _ => 120.0,
    }
}

/// The effective `--quick` budget for `id`: the coarse
/// `EQUINOX_QUICK_BUDGET_S` (when set) overrides every id uniformly,
/// else `EQUINOX_QUICK_BUDGET_<ID>_S`, else the built-in default.
fn quick_budget_s(id: &str) -> f64 {
    if let Some(b) = std::env::var("EQUINOX_QUICK_BUDGET_S")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        return b;
    }
    let key = format!("EQUINOX_QUICK_BUDGET_{}_S", id.to_uppercase());
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| default_quick_budget_s(id))
}

/// Renders `results/bench_timings.json`: per-id wall clock, pool size,
/// and the compile-cache counters. Deliberately *not* covered by the
/// byte-identical determinism contract — it measures this run.
fn timings_json(threads: usize, quick: bool, total_s: f64, results: &[JobResult]) -> String {
    let cache = equinox_isa::cache::stats();
    let mut json = String::from("{\"tool\":\"regen-results\"");
    let _ = write!(json, ",\"threads\":{threads},\"quick\":{quick}");
    let _ = write!(json, ",\"total_s\":{total_s:.3}");
    let _ = write!(
        json,
        ",\"compile_cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{}}}",
        cache.hits, cache.misses, cache.evictions
    );
    json.push_str(",\"experiments\":[");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(json, "{{\"id\":\"{}\",\"wall_s\":{:.3}", r.id, r.wall_s);
        if quick {
            let budget = quick_budget_s(r.id);
            let _ = write!(
                json,
                ",\"budget_s\":{budget:.1},\"within_budget\":{}",
                r.wall_s <= budget
            );
        }
        json.push('}');
    }
    json.push_str("],\"comparisons\":[");
    let mut first = true;
    for r in results {
        for row in &r.body.comparisons {
            if !first {
                json.push(',');
            }
            first = false;
            json.push_str(row);
        }
    }
    json.push_str("]}\n");
    json
}

fn jobs_for(selected: impl Fn(&str) -> bool, scale: ExperimentScale) -> Vec<Job> {
    let mut jobs: Vec<Job> = Vec::new();
    let mut push = |id: &'static str,
                    title: &'static str,
                    run: Box<dyn FnOnce() -> JobBody + Send>| {
        jobs.push(Job { id, title, run });
    };

    if selected("fig2") {
        push("fig2", "hbfp8 vs fp32 convergence (Figure 2)", Box::new(move || {
            let mut log = String::new();
            let fig = fig2::run(scale);
            let _ = writeln!(log, "{fig}");
            let mut csv = String::from("task,encoding,epoch,train_loss,val_metric\n");
            for (task, curves) in [
                ("classification", &fig.classification),
                ("language", &fig.language),
                ("lstm_bptt", &fig.lstm),
            ] {
                for c in curves {
                    for p in &c.points {
                        let _ = writeln!(
                            csv,
                            "{task},{},{},{},{}",
                            c.label, p.epoch, p.train_loss, p.val_metric
                        );
                    }
                }
            }
            JobBody {
                log,
                comparisons: Vec::new(),
                files: vec![("fig2_convergence.csv".into(), csv)],
                failure: None,
            }
        }));
    }

    if selected("fig6") {
        push("fig6", "design-space scatter (Figure 6)", Box::new(move || {
            let mut log = String::new();
            let fig = fig6::run();
            let _ = writeln!(log, "{fig}");
            JobBody {
                log,
                comparisons: Vec::new(),
                files: vec![
                    ("fig6a_hbfp8.csv".into(), fig.hbfp8_csv),
                    ("fig6b_bfloat16.csv".into(), fig.bf16_csv),
                ],
                failure: None,
            }
        }));
    }

    if selected("table1") {
        push("table1", "Pareto-optimal designs (Table 1)", Box::new(move || {
            let mut log = String::new();
            let table = table1::run();
            let _ = writeln!(log, "{table}");
            JobBody {
                log,
                comparisons: Vec::new(),
                files: vec![("table1_pareto.txt".into(), table.to_string())],
                failure: None,
            }
        }));
    }

    if selected("fig7") {
        push("fig7", "inference tail latency vs throughput (Figure 7)", Box::new(move || {
            let mut log = String::new();
            let mut files = Vec::new();
            for encoding in [
                equinox_arith::Encoding::Hbfp8,
                equinox_arith::Encoding::Bfloat16,
            ] {
                let fig = fig7::run(encoding, scale);
                let _ = writeln!(log, "{fig}");
                let mut csv = String::from("config,load,inference_tops,p99_ms\n");
                for s in &fig.series {
                    for p in &s.points {
                        let _ = writeln!(
                            csv,
                            "{},{},{},{}",
                            s.name, p.load, p.inference_tops, p.p99_ms
                        );
                    }
                }
                let panel = if encoding == equinox_arith::Encoding::Hbfp8 { "a" } else { "b" };
                files.push((format!("fig7{panel}_{encoding}.csv"), csv));
            }
            JobBody { log, files, failure: None, comparisons: Vec::new() }
        }));
    }

    if selected("fig8") {
        push("fig8", "cycle breakdown (Figure 8)", Box::new(move || {
            let mut log = String::new();
            let fig = fig8::run(scale);
            let _ = writeln!(log, "{fig}");
            let mut csv = String::from("load,config,working,dummy,idle,other\n");
            for b in &fig.bars {
                let _ = writeln!(
                    csv,
                    "{},{},{},{},{},{}",
                    b.load,
                    if b.with_training { "Inf+Train" } else { "Inf" },
                    b.breakdown.working,
                    b.breakdown.dummy,
                    b.breakdown.idle,
                    b.breakdown.other
                );
            }
            JobBody {
                log,
                comparisons: Vec::new(),
                files: vec![("fig8_breakdown.csv".into(), csv)],
                failure: None,
            }
        }));
    }

    if selected("fig9") {
        push("fig9", "training throughput vs inference load (Figure 9)", Box::new(move || {
            let mut log = String::new();
            let fig = fig9::run(scale);
            let _ = writeln!(log, "{fig}");
            for name in ["Equinox_min", "Equinox_50us", "Equinox_500us", "Equinox_none"] {
                if let Some(frac) = fig.peak_fraction(name) {
                    let _ = writeln!(
                        log,
                        "  {name}: {:.0}% of the dedicated-accelerator bound",
                        frac * 100.0
                    );
                }
            }
            let mut csv = String::from("config,load,training_tops\n");
            for s in &fig.series {
                for p in &s.points {
                    let _ = writeln!(csv, "{},{},{}", s.name, p.load, p.training_tops);
                }
            }
            JobBody {
                log,
                comparisons: Vec::new(),
                files: vec![("fig9_training.csv".into(), csv)],
                failure: None,
            }
        }));
    }

    if selected("table2") {
        push("table2", "workload sensitivity (Table 2, + MLP/Transformer extension)", Box::new(move || {
            let mut log = String::new();
            let table = table2::run_extended(scale);
            let _ = writeln!(log, "{table}");
            JobBody {
                log,
                comparisons: Vec::new(),
                files: vec![("table2_workloads.txt".into(), table.to_string())],
                failure: None,
            }
        }));
    }

    if selected("table3") {
        push("table3", "area and power (Table 3)", Box::new(move || {
            let mut log = String::new();
            let report = table3::run();
            let _ = writeln!(log, "{report}");
            let (ca, cp) = report.controller_overhead();
            let (ea, ep) = report.encoding_overhead();
            let _ = writeln!(
                log,
                "\n  controller overhead: {:.2}% area, {:.2}% power (paper: <1%)",
                ca * 100.0,
                cp * 100.0
            );
            let _ = writeln!(
                log,
                "  encoding overhead:   {:.1}% area, {:.1}% power (paper: 4% / 13%)",
                ea * 100.0,
                ep * 100.0
            );
            JobBody {
                log,
                comparisons: Vec::new(),
                files: vec![("table3_area_power.txt".into(), report.to_string())],
                failure: None,
            }
        }));
    }

    if selected("fig10") {
        push("fig10", "scheduling policies (Figure 10)", Box::new(move || {
            let mut log = String::new();
            let fig = fig10::run(scale);
            let _ = writeln!(log, "{fig}");
            let mut csv = String::from("policy,load,inference_tops,p99_ms,training_tops\n");
            for s in &fig.series {
                for p in &s.points {
                    let _ = writeln!(
                        csv,
                        "{},{},{},{},{}",
                        s.name, p.load, p.inference_tops, p.p99_ms, p.training_tops
                    );
                }
            }
            JobBody {
                log,
                comparisons: Vec::new(),
                files: vec![("fig10_scheduling.csv".into(), csv)],
                failure: None,
            }
        }));
    }

    if selected("fig11") {
        push("fig11", "adaptive batching (Figure 11)", Box::new(move || {
            let mut log = String::new();
            let fig = fig11::run(scale);
            let _ = writeln!(log, "{fig}");
            let mut csv =
                String::from("panel,series,load,inference_tops,p99_ms,training_tops\n");
            for (panel, series) in [
                ("a", &fig.panel_a),
                ("b", &fig.panel_b),
                ("c", &fig.panel_c),
            ] {
                for s in series {
                    for p in &s.points {
                        let _ = writeln!(
                            csv,
                            "{panel},{},{},{},{},{}",
                            s.name, p.load, p.inference_tops, p.p99_ms, p.training_tops
                        );
                    }
                }
            }
            JobBody {
                log,
                comparisons: Vec::new(),
                files: vec![("fig11_batching.csv".into(), csv)],
                failure: None,
            }
        }));
    }

    if selected("software") {
        push("software", "software vs hardware scheduling (§6 text)", Box::new(move || {
            let mut log = String::new();
            let study = software_sched::run(scale);
            let _ = writeln!(log, "{study}");
            JobBody {
                log,
                comparisons: Vec::new(),
                files: vec![("software_scheduling.txt".into(), study.to_string())],
                failure: None,
            }
        }));
    }

    if selected("diurnal") {
        push("diurnal", "training for free over a day (extension)", Box::new(move || {
            let mut log = String::new();
            let d = diurnal::run(scale);
            let _ = writeln!(log, "{d}");
            JobBody {
                log,
                comparisons: Vec::new(),
                files: vec![("diurnal.txt".into(), d.to_string())],
                failure: None,
            }
        }));
    }

    if selected("ablation") {
        push("ablation", "design-choice ablations (extensions)", Box::new(move || {
            let mut log = String::new();
            let a = ablation::run(scale);
            let _ = writeln!(log, "{a}");
            JobBody {
                log,
                comparisons: Vec::new(),
                files: vec![("ablations.txt".into(), a.to_string())],
                failure: None,
            }
        }));
    }

    if selected("fault") {
        push("fault", "fault injection × graceful degradation (extension)", Box::new(move || {
            let mut log = String::new();
            let sweep = fault_sweep::run(scale);
            let _ = writeln!(log, "{sweep}");
            // The CI smoke gate: a panic anywhere above already failed
            // the run; additionally fail on SLO violations in the
            // no-fault baseline or degradation configs rejected by
            // equinox-check.
            let failure = if !sweep.baseline_is_clean() {
                Some("fault: no-fault baseline violated the SLO".into())
            } else if sweep.has_check_errors() {
                Some("fault: a degradation policy failed the equinox-check lints".into())
            } else {
                None
            };
            JobBody {
                log,
                comparisons: Vec::new(),
                files: vec![("fault_sweep.json".into(), sweep.to_json())],
                failure,
            }
        }));
    }

    if selected("fleet") {
        push("fleet", "fleet size × routing policy × load (extension)", Box::new(move || {
            let mut log = String::new();
            let sweep = fleet::run(scale);
            let _ = writeln!(log, "{sweep}");
            // The CI smoke gate: training-aware routing must harvest
            // strictly more fleet-wide free epochs than round-robin at
            // the moderate operating point, on every fleet size,
            // without violating the inference SLO.
            let failure = (!sweep.training_aware_wins()).then(|| {
                "fleet: training-aware routing failed the harvest-advantage/SLO gate".to_string()
            });
            JobBody {
                log,
                comparisons: Vec::new(),
                files: vec![("fleet_sweep.json".into(), sweep.to_json())],
                failure,
            }
        }));
    }

    if selected("allreduce") {
        push("allreduce", "gradient all-reduce: harvest-vs-sync frontier (extension)", Box::new(move || {
            let mut log = String::new();
            let sweep = allreduce::run(scale);
            let _ = writeln!(log, "{sweep}");
            // The CI smoke gate: the full topology × schedule × load
            // frontier is present; every fabric still completes its
            // round with strictly positive synced epochs at the
            // moderate load; the paid tier is untouched at the
            // one-big-switch reference cells; every link conserves
            // bytes; and the EQX09xx fabric lints are clean.
            let failure = (!sweep.passes()).then(|| {
                let mut failed = Vec::new();
                if !sweep.frontier_complete() {
                    failed.push("frontier_complete");
                }
                if !sweep.synced_positive_at_moderate() {
                    failed.push("synced_positive_at_moderate");
                }
                if !sweep.reference_slo_clean() {
                    failed.push("reference_slo_clean");
                }
                if !sweep.conserved() {
                    failed.push("conserved");
                }
                if !sweep.lints_clean() {
                    failed.push("lints_clean");
                }
                format!("allreduce: harvest-vs-sync gate failed ({})", failed.join(", "))
            });
            JobBody {
                log,
                comparisons: Vec::new(),
                files: vec![("allreduce_sweep.json".into(), sweep.to_json())],
                failure,
            }
        }));
    }

    if selected("serve") {
        push("serve", "admission control × overload × autoscaling (extension)", Box::new(move || {
            let mut log = String::new();
            let sweep = serve::run(scale);
            let _ = writeln!(log, "{sweep}");
            // The CI smoke gate: under 120 % offered load (clean and
            // faulted) the priority policy must hold the paid tier's
            // p999 inside the deadline while admit-all violates it,
            // shed free traffic first, autoscale without losing
            // in-flight requests, reach trace scale, and keep the
            // EQX07xx serving lints clean.
            let failure = (!sweep.passes()).then(|| {
                let mut failed = Vec::new();
                if !sweep.priority_protects_paid() {
                    failed.push("priority_protects_paid");
                }
                if !sweep.free_is_shed_first() {
                    failed.push("free_is_shed_first");
                }
                if !sweep.autoscale_drains_cleanly() {
                    failed.push("autoscale_drains_cleanly");
                }
                if !sweep.trace_scale_reached() {
                    failed.push("trace_scale_reached");
                }
                if !sweep.lints_clean() {
                    failed.push("lints_clean");
                }
                format!("serve: serving-layer gate failed ({})", failed.join(", "))
            });
            JobBody {
                log,
                comparisons: Vec::new(),
                files: vec![("serve_sweep.json".into(), sweep.to_json())],
                failure,
            }
        }));
    }

    if selected("bounds") {
        push("bounds", "static bound calibration against the cycle-accurate sim (extension)", Box::new(move || {
            let mut log = String::new();
            let cal = bounds_calibration::run(scale);
            let _ = writeln!(log, "{cal}");
            // The CI smoke gate: on every (paper model × lowering) cell
            // the dispatcher-accounted cycles must land inside the
            // static `[lower, upper]`, the bounds must stay tight
            // (upper/lower ≤ 4×), and the discrete-event engine probes
            // at the fig10/fig11 operating points must agree with the
            // static accounting.
            let failure = (!cal.all_calibrated()).then(|| {
                let names: Vec<String> = cal
                    .failures()
                    .iter()
                    .map(|c| format!("{}/{}", c.model, c.mode))
                    .collect();
                format!("bounds: calibration gate failed on {}", names.join(", "))
            });
            JobBody {
                log,
                comparisons: Vec::new(),
                files: vec![("bounds_calibration.json".into(), cal.to_json())],
                failure,
            }
        }));
    }

    if selected("fitted") {
        push("fitted", "fitted distributional surrogate: tables + calibration gate (extension)", Box::new(move || {
            let mut log = String::new();
            // Fit (or reuse this process's shared fit) and gate the
            // tables against held-out cycle-accurate runs.
            let t_fit = Instant::now();
            let cal = fitted::FittedCalibration::shared(scale);
            let fit_s = t_fit.elapsed().as_secs_f64();
            let _ = writeln!(log, "{cal}");
            // The wall-clock comparison the tier exists for: the
            // largest cycle-accurate grid cell vs the fitted scaled
            // sweep, normalised per simulated device-interval. Timing
            // rows land in bench_timings.json's `comparisons` array
            // (exempt from the byte-identity contract).
            let t_ref = Instant::now();
            let (ref_devices, ref_intervals) = fleet::run_reference_cell(scale);
            let ref_s = t_ref.elapsed().as_secs_f64();
            let t_scaled = Instant::now();
            let scaled = fleet::run_scaled(scale);
            let scaled_s = t_scaled.elapsed().as_secs_f64();
            let ref_di = (ref_devices as u64 * ref_intervals) as f64;
            let scaled_di: f64 = scaled
                .iter()
                .map(|c| (c.fleet_size as u64 * c.intervals) as f64)
                .sum();
            let throughput_x = if ref_s > 0.0 && scaled_s > 0.0 {
                (scaled_di / scaled_s) / (ref_di / ref_s)
            } else {
                0.0
            };
            let _ = writeln!(
                log,
                "  wall-clock: cycle-accurate {ref_devices}x{ref_intervals} \
                 device-intervals in {ref_s:.1}s vs fitted {scaled_di:.0} \
                 device-intervals in {scaled_s:.1}s — {throughput_x:.2}x \
                 per device-interval (fit itself: {fit_s:.1}s)",
            );
            let mut comparisons = vec![
                format!("{{\"id\":\"fit\",\"wall_s\":{fit_s:.3}}}"),
                format!(
                    "{{\"id\":\"cycle_accurate_reference\",\"wall_s\":{ref_s:.3},\
                     \"devices\":{ref_devices},\"intervals\":{ref_intervals},\
                     \"device_intervals\":{ref_di:.0}}}"
                ),
            ];
            for c in &scaled {
                comparisons.push(format!(
                    "{{\"id\":\"fitted_scaled_{}x{}\",\"devices\":{},\
                     \"intervals\":{},\"device_intervals\":{}}}",
                    c.fleet_size,
                    c.intervals,
                    c.fleet_size,
                    c.intervals,
                    c.fleet_size as u64 * c.intervals,
                ));
            }
            comparisons.push(format!(
                "{{\"id\":\"fitted_scaled_total\",\"wall_s\":{scaled_s:.3},\
                 \"device_intervals\":{scaled_di:.0},\
                 \"throughput_x_vs_cycle_accurate\":{throughput_x:.2}}}"
            ));
            // The CI smoke gate: every fitted sample inside the static
            // envelope, measured service contained, and every
            // sufficiently-populated held-out contention bucket within
            // the relative-error ceiling — failures are named per
            // (model, bucket).
            let failure = (!cal.all_calibrated()).then(|| {
                format!("fitted: calibration gate failed ({})", cal.failures().join("; "))
            });
            JobBody {
                log,
                comparisons,
                files: vec![("fitted_tables.json".into(), cal.to_json())],
                failure,
            }
        }));
    }

    if selected("numerics") {
        push("numerics", "HBFP numerics-pass calibration against the executed fixed-point kernels (extension)", Box::new(move || {
            let mut log = String::new();
            let sweep = numerics::run(scale);
            let _ = writeln!(log, "{sweep}");
            // The CI smoke gate: on every (paper model × lowering) cell
            // the EQX08xx pass must be error-free and every reduction
            // chain it marked safe must survive the executed-arithmetic
            // probes (adversarial, tightness, and seeded random) with
            // zero saturation events — a single false-safe verdict
            // fails the job by name.
            let failure = (!sweep.all_calibrated()).then(|| {
                let names: Vec<String> = sweep
                    .failures()
                    .iter()
                    .map(|c| format!("{}/{}", c.model, c.mode))
                    .collect();
                format!(
                    "numerics: calibration gate failed on {} ({} false-safe verdict(s))",
                    names.join(", "),
                    sweep.false_safe_count(),
                )
            });
            JobBody {
                log,
                comparisons: Vec::new(),
                files: vec![("numerics_sweep.json".into(), sweep.to_json())],
                failure,
            }
        }));
    }

    if selected("checks") {
        push("checks", "equinox-check verdicts for the drivers' configurations", Box::new(move || {
            let mut log = String::new();
            use equinox_core::Equinox;
            use equinox_isa::models::ModelSpec;
            use equinox_model::LatencyConstraint;
            // One verdict per (driver, design, workload) the experiment
            // drivers exercise; regenerated alongside the artifacts so the
            // static-analysis state of every published number is recorded.
            let grid: [(&str, LatencyConstraint, ModelSpec, usize); 7] = [
                ("fig7/fig8/fig10/fig11", LatencyConstraint::Micros(500), ModelSpec::lstm_2048_25(), 0),
                ("fig9", LatencyConstraint::Micros(50), ModelSpec::lstm_2048_25(), 0),
                ("fig9/min", LatencyConstraint::MinLatency, ModelSpec::lstm_2048_25(), 0),
                ("table2/gru", LatencyConstraint::Micros(500), ModelSpec::gru_2816_1500(), 0),
                ("table2/resnet", LatencyConstraint::Micros(500), ModelSpec::resnet50(), 8),
                ("table2/mlp", LatencyConstraint::Micros(500), ModelSpec::mlp_2048x5(), 0),
                ("diurnal/fault", LatencyConstraint::Micros(500), ModelSpec::lstm_2048_25(), 0),
            ];
            // The grid rows are independent: analyze them concurrently
            // and stitch log + JSON back together in row order.
            let verdicts = equinox_par::parallel_map(grid.to_vec(), |(driver, constraint, model, batch)| {
                let eq = Equinox::build(equinox_arith::Encoding::Hbfp8, constraint)
                    .expect("paper designs exist");
                let batch = if batch == 0 { eq.dims().n } else { batch };
                let report = eq.check(&model, batch);
                (driver, report)
            });
            let mut check_errors = 0usize;
            let mut json = String::from("{\"tool\":\"regen-results\",\"reports\":[");
            for (i, (driver, report)) in verdicts.iter().enumerate() {
                let _ = writeln!(
                    log,
                    "  {driver}: {} error(s), {} warning(s)",
                    report.error_count(),
                    report.warning_count()
                );
                check_errors += report.error_count();
                if i > 0 {
                    json.push(',');
                }
                let _ = write!(
                    json,
                    "{{\"driver\":\"{driver}\",\"report\":{}}}",
                    report.to_json()
                );
            }
            // The training lowerings behind every "training for free" number:
            // one full backward-pass + weight-update program per paper model
            // on the 500 µs design, vetted by the operand-level dataflow
            // pass. The GRU's 1500-step unroll exceeds the facade's default
            // analysis cap, so these rows use one large enough that nothing
            // is skipped.
            let eq = Equinox::build(equinox_arith::Encoding::Hbfp8, LatencyConstraint::Micros(500))
                .expect("paper designs exist");
            let training_reports = equinox_par::parallel_map(
                vec![
                    ModelSpec::lstm_2048_25(),
                    ModelSpec::gru_2816_1500(),
                    ModelSpec::resnet50(),
                    ModelSpec::mlp_2048x5(),
                ],
                |model| {
                    let report = eq.check_training(&model, 16_000_000);
                    (model.name().to_string(), report)
                },
            );
            for (name, report) in &training_reports {
                let _ = writeln!(
                    log,
                    "  training/{name}: {} error(s), {} warning(s)",
                    report.error_count(),
                    report.warning_count()
                );
                check_errors += report.error_count();
                let _ = write!(
                    json,
                    ",{{\"driver\":\"training/{name}\",\"report\":{}}}",
                    report.to_json()
                );
            }
            json.push_str("]}");
            let failure = (check_errors > 0).then(|| {
                format!("checks: {check_errors} error-severity diagnostic(s) in driver configurations")
            });
            JobBody {
                log,
                comparisons: Vec::new(),
                files: vec![("driver_checks.json".into(), json)],
                failure,
            }
        }));
    }

    jobs
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    args.retain(|a| a != "--quick");
    let selected = |id: &str| {
        args.is_empty() || args.iter().any(|a| a == id || a.starts_with(id))
    };
    let scale = if quick { ExperimentScale::Quick } else { ExperimentScale::Full };
    let threads = equinox_par::thread_count();
    let start = Instant::now();

    // Enumerate in canonical order, run concurrently, then emit logs /
    // write artifacts back in that order (see the module docs for the
    // determinism contract).
    let jobs = jobs_for(selected, scale);
    let results = equinox_par::parallel_map(jobs, |job| {
        let t = Instant::now();
        let body = (job.run)();
        JobResult { id: job.id, title: job.title, body, wall_s: t.elapsed().as_secs_f64() }
    });

    let mut failures: Vec<String> = Vec::new();
    for r in &results {
        println!("\n=== {}: {} ===", r.id, r.title);
        print!("{}", r.body.log);
        for (name, content) in &r.body.files {
            write_result(name, content);
        }
        println!("  [{:.1}s]", r.wall_s);
        failures.extend(r.body.failure.iter().cloned());
    }

    let elapsed = start.elapsed().as_secs_f64();
    write_result(
        "bench_timings.json",
        &timings_json(threads, quick, elapsed, &results),
    );
    println!("\nAll selected experiments done in {elapsed:.1}s ({threads} thread(s)).");

    if quick {
        // The CI smoke job runs `--quick`; a blowup here means a grid
        // accidentally regained full scale. Budgets are per-id so the
        // offender is named instead of failing on the aggregate.
        println!("\n--quick wall-clock budgets:");
        println!("  {:<10} {:>8} {:>10}  verdict", "id", "wall_s", "budget_s");
        for r in &results {
            let budget = quick_budget_s(r.id);
            let ok = r.wall_s <= budget;
            println!(
                "  {:<10} {:>8.1} {:>10.0}  {}",
                r.id,
                r.wall_s,
                budget,
                if ok { "ok" } else { "OVER" }
            );
            if !ok {
                failures.push(format!(
                    "{}: --quick run took {:.1}s, over its {budget:.0}s smoke budget",
                    r.id, r.wall_s
                ));
            }
        }
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("{f}");
        }
        std::process::exit(1);
    }
}
