//! Benchmarks the software-vs-hardware scheduling study (quick scale).

use criterion::{criterion_group, criterion_main, Criterion};
use equinox_core::experiments::software_sched;
use equinox_core::ExperimentScale;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("software_sched");
    group.sample_size(10);
    group.bench_function("study_quick", |b| {
        b.iter(|| {
            let study = software_sched::run(ExperimentScale::Quick);
            assert!(study.software_violates_target());
            study
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
