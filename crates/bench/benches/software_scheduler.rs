//! Benchmarks the software-vs-hardware scheduling study (quick scale).

use equinox_bench::harness;
use equinox_core::experiments::software_sched;
use equinox_core::ExperimentScale;

fn main() {
    harness::time("software_sched", "study_quick", 3, || {
        let study = software_sched::run(ExperimentScale::Quick);
        assert!(study.software_violates_target());
        study
    });
}
