//! Benchmarks the Figure 8 cycle-breakdown experiment (quick scale).

use equinox_bench::harness;
use equinox_core::experiments::fig8;
use equinox_core::ExperimentScale;

fn main() {
    harness::time("fig8", "breakdown_quick", 3, || {
        let fig = fig8::run(ExperimentScale::Quick);
        assert_eq!(fig.bars.len(), 6);
        fig
    });
}
