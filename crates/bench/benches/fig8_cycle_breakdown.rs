//! Benchmarks the Figure 8 cycle-breakdown experiment (quick scale).

use criterion::{criterion_group, criterion_main, Criterion};
use equinox_core::experiments::fig8;
use equinox_core::ExperimentScale;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8");
    group.sample_size(10);
    group.bench_function("breakdown_quick", |b| {
        b.iter(|| {
            let fig = fig8::run(ExperimentScale::Quick);
            assert_eq!(fig.bars.len(), 6);
            fig
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
