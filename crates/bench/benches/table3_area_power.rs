//! Benchmarks the Table 3 synthesis roll-up.

use criterion::{criterion_group, criterion_main, Criterion};
use equinox_core::experiments::table3;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3");
    group.sample_size(10);
    group.bench_function("area_power", |b| {
        b.iter(|| {
            let r = table3::run();
            assert!(r.total_area_mm2() > 200.0);
            r
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
