//! Benchmarks the Table 3 synthesis roll-up.

use equinox_bench::harness;
use equinox_core::experiments::table3;

fn main() {
    harness::time("table3", "area_power", 3, || {
        let r = table3::run();
        assert!(r.total_area_mm2() > 200.0);
        r
    });
}
