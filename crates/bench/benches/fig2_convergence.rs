//! Benchmarks the Figure 2 convergence pipeline (quick scale).

use equinox_bench::harness;
use equinox_core::experiments::fig2;
use equinox_core::ExperimentScale;

fn main() {
    harness::time("fig2", "convergence_quick", 3, || {
        let fig = fig2::run(ExperimentScale::Quick);
        assert!(fig.classification_gap() < 0.15);
        fig
    });
}
