//! Benchmarks the Figure 2 convergence pipeline (quick scale).

use criterion::{criterion_group, criterion_main, Criterion};
use equinox_core::experiments::fig2;
use equinox_core::ExperimentScale;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2");
    group.sample_size(10);
    group.bench_function("convergence_quick", |b| {
        b.iter(|| {
            let fig = fig2::run(ExperimentScale::Quick);
            assert!(fig.classification_gap() < 0.15);
            fig
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
