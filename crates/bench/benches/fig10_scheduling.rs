//! Benchmarks the Figure 10 scheduling comparison (quick scale).

use equinox_bench::harness;
use equinox_core::experiments::fig10;
use equinox_core::ExperimentScale;

fn main() {
    harness::time("fig10", "scheduling_quick", 3, || {
        let fig = fig10::run(ExperimentScale::Quick);
        assert_eq!(fig.series.len(), 3);
        fig
    });
}
