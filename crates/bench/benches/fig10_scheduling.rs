//! Benchmarks the Figure 10 scheduling comparison (quick scale).

use criterion::{criterion_group, criterion_main, Criterion};
use equinox_core::experiments::fig10;
use equinox_core::ExperimentScale;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10");
    group.sample_size(10);
    group.bench_function("scheduling_quick", |b| {
        b.iter(|| {
            let fig = fig10::run(ExperimentScale::Quick);
            assert_eq!(fig.series.len(), 3);
            fig
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
