//! Benchmarks the Table 1 Pareto selection.

use criterion::{criterion_group, criterion_main, Criterion};
use equinox_core::experiments::table1;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("pareto_table", |b| {
        b.iter(|| {
            let t = table1::run();
            assert_eq!(t.rows.len(), 4);
            t
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
