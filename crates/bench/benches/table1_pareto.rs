//! Benchmarks the Table 1 Pareto selection.

use equinox_bench::harness;
use equinox_core::experiments::table1;

fn main() {
    harness::time("table1", "pareto_table", 3, || {
        let t = table1::run();
        assert_eq!(t.rows.len(), 4);
        t
    });
}
