//! Benchmarks the Table 2 workload-sensitivity experiment (quick scale).

use criterion::{criterion_group, criterion_main, Criterion};
use equinox_core::experiments::table2;
use equinox_core::ExperimentScale;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    group.bench_function("workloads_quick", |b| {
        b.iter(|| {
            let t = table2::run(ExperimentScale::Quick);
            assert_eq!(t.rows.len(), 3);
            t
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
