//! Benchmarks the Table 2 workload-sensitivity experiment (quick scale).

use equinox_bench::harness;
use equinox_core::experiments::table2;
use equinox_core::ExperimentScale;

fn main() {
    harness::time("table2", "workloads_quick", 3, || {
        let t = table2::run(ExperimentScale::Quick);
        assert_eq!(t.rows.len(), 3);
        t
    });
}
