//! Benchmarks the Figure 11 adaptive-batching panels (quick scale).

use criterion::{criterion_group, criterion_main, Criterion};
use equinox_core::experiments::fig11;
use equinox_core::ExperimentScale;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11");
    group.sample_size(10);
    group.bench_function("batching_quick", |b| {
        b.iter(|| {
            let fig = fig11::run(ExperimentScale::Quick);
            assert_eq!(fig.panel_a.len(), 2);
            fig
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
