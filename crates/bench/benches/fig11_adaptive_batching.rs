//! Benchmarks the Figure 11 adaptive-batching panels (quick scale).

use equinox_bench::harness;
use equinox_core::experiments::fig11;
use equinox_core::ExperimentScale;

fn main() {
    harness::time("fig11", "batching_quick", 3, || {
        let fig = fig11::run(ExperimentScale::Quick);
        assert_eq!(fig.panel_a.len(), 2);
        fig
    });
}
