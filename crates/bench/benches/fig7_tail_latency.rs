//! Benchmarks the Figure 7 tail-latency load sweep (quick scale).

use criterion::{criterion_group, criterion_main, Criterion};
use equinox_arith::Encoding;
use equinox_core::experiments::fig7;
use equinox_core::ExperimentScale;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    group.bench_function("hbfp8_panel_quick", |b| {
        b.iter(|| {
            let fig = fig7::run(Encoding::Hbfp8, ExperimentScale::Quick);
            assert_eq!(fig.series.len(), 4);
            fig
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
