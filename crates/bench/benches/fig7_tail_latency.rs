//! Benchmarks the Figure 7 tail-latency load sweep (quick scale).

use equinox_bench::harness;
use equinox_arith::Encoding;
use equinox_core::experiments::fig7;
use equinox_core::ExperimentScale;

fn main() {
    harness::time("fig7", "hbfp8_panel_quick", 3, || {
        let fig = fig7::run(Encoding::Hbfp8, ExperimentScale::Quick);
        assert_eq!(fig.series.len(), 4);
        fig
    });
}
