//! Benchmarks the Figure 9 training-throughput sweep (quick scale).

use equinox_bench::harness;
use equinox_core::experiments::fig9;
use equinox_core::ExperimentScale;

fn main() {
    harness::time("fig9", "training_sweep_quick", 3, || {
        let fig = fig9::run(ExperimentScale::Quick);
        assert_eq!(fig.series.len(), 4);
        fig
    });
}
