//! Benchmarks the Figure 9 training-throughput sweep (quick scale).

use criterion::{criterion_group, criterion_main, Criterion};
use equinox_core::experiments::fig9;
use equinox_core::ExperimentScale;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9");
    group.sample_size(10);
    group.bench_function("training_sweep_quick", |b| {
        b.iter(|| {
            let fig = fig9::run(ExperimentScale::Quick);
            assert_eq!(fig.series.len(), 4);
            fig
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
