//! Benchmarks the fault-injection × degradation sweep (quick scale).

use equinox_bench::harness;
use equinox_core::experiments::fault_sweep;
use equinox_core::ExperimentScale;

fn main() {
    harness::time("fault_sweep", "grid_quick", 3, || {
        let s = fault_sweep::run(ExperimentScale::Quick);
        assert!(s.baseline_is_clean());
        s
    });
}
