//! Benchmarks the day-long diurnal co-location extension (quick scale).

use criterion::{criterion_group, criterion_main, Criterion};
use equinox_core::experiments::diurnal;
use equinox_core::ExperimentScale;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("diurnal");
    group.sample_size(10);
    group.bench_function("day_quick", |b| {
        b.iter(|| {
            let d = diurnal::run(ExperimentScale::Quick);
            assert!(d.training_tops > 0.0);
            d
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
