//! Benchmarks the day-long diurnal co-location extension (quick scale).

use equinox_bench::harness;
use equinox_core::experiments::diurnal;
use equinox_core::ExperimentScale;

fn main() {
    harness::time("diurnal", "day_quick", 3, || {
        let d = diurnal::run(ExperimentScale::Quick);
        assert!(d.training_tops > 0.0);
        d
    });
}
