//! Benchmarks the Figure 6 design-space sweep (both encodings).

use equinox_bench::harness;
use equinox_core::experiments::fig6;

fn main() {
    harness::time("fig6", "design_space_sweep", 3, || {
        let fig = fig6::run();
        assert!(!fig.hbfp8.is_empty());
        fig
    });
}
