//! Benchmarks the Figure 6 design-space sweep (both encodings).

use criterion::{criterion_group, criterion_main, Criterion};
use equinox_core::experiments::fig6;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    group.bench_function("design_space_sweep", |b| {
        b.iter(|| {
            let fig = fig6::run();
            assert!(!fig.hbfp8.is_empty());
            fig
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
