//! Benchmarks the design-choice ablations (quick scale).

use equinox_bench::harness;
use equinox_core::experiments::ablation;
use equinox_core::ExperimentScale;

fn main() {
    harness::time("ablation", "design_choices_quick", 3, || {
        let a = ablation::run(ExperimentScale::Quick);
        assert!(!a.power.is_empty());
        a
    });
}
