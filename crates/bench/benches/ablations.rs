//! Benchmarks the design-choice ablations (quick scale).

use criterion::{criterion_group, criterion_main, Criterion};
use equinox_core::experiments::ablation;
use equinox_core::ExperimentScale;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.bench_function("design_choices_quick", |b| {
        b.iter(|| {
            let a = ablation::run(ExperimentScale::Quick);
            assert!(!a.power.is_empty());
            a
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
