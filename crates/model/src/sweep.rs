//! The §4.1 design-space sweep.
//!
//! "We sweep the design space by varying n and the design frequency. For
//! a given n and frequency, we find the largest values of m and w that
//! are still below the area and power envelopes."

use crate::constants::{EncodingParams, TechnologyParams};
use crate::design::{DesignPoint, EvaluatedDesign};
use crate::pareto;
use crate::table1::LatencyConstraint;
use equinox_arith::Encoding;

/// The evaluated design space for one encoding.
#[derive(Debug, Clone)]
pub struct DesignSpace {
    encoding: Encoding,
    tech: TechnologyParams,
    /// One best design per (n, frequency) pair — the Figure 6 scatter.
    points: Vec<EvaluatedDesign>,
    /// The Pareto frontier (throughput up, latency down).
    frontier: Vec<EvaluatedDesign>,
}

/// Largest `m` for a given `(n, w, f)` under both envelopes; 0 if even
/// `m = 1` does not fit.
fn max_m(n: usize, w: usize, freq_hz: f64, enc: &EncodingParams, tech: &TechnologyParams) -> usize {
    let (nf, wf) = (n as f64, w as f64);
    // Area: m·n²·w·a_alu ≤ alu_area_budget.
    let m_area = tech.alu_area_budget_mm2() / (nf * nf * wf * enc.alu_area_mm2);
    // Power: f·s·(m·n²·w·e_alu + e_sram·b·(w·n + m·w·n + m·n)) ≤ P_dyn
    //   ⇔ m·[f·s·(n²·w·e_alu + e_sram·b·(w·n + n))] ≤ P_dyn − f·s·e_sram·b·w·n
    let s = tech.energy_scale_at(freq_hz);
    let e_sram_b = tech.sram_energy_pj_per_byte * enc.bytes_per_value;
    let per_m_pj = nf * nf * wf * enc.alu_energy_pj + e_sram_b * (wf * nf + nf);
    let fixed_pj = e_sram_b * wf * nf;
    let budget_pj = tech.dynamic_power_budget_w() / (freq_hz * s) * 1e12;
    let m_power = (budget_pj - fixed_pj) / per_m_pj;
    let m = m_area.min(m_power).floor();
    if m < 1.0 {
        0
    } else {
        m as usize
    }
}

impl DesignSpace {
    /// Sweeps `n ∈ [1, 256]` and every candidate frequency; for each pair
    /// the PE width `w` is swept and the `(m, w)` maximizing throughput
    /// under the envelopes is kept.
    pub fn sweep(encoding: Encoding, tech: &TechnologyParams) -> Self {
        Self::sweep_with_limits(encoding, tech, 256, 64)
    }

    /// Sweep with custom `n`/`w` upper bounds (used by tests and the
    /// reduced-size benches).
    pub fn sweep_with_limits(
        encoding: Encoding,
        tech: &TechnologyParams,
        n_max: usize,
        w_max: usize,
    ) -> Self {
        let enc = EncodingParams::for_encoding(encoding);
        // The (n, frequency) cells are independent; evaluate one `n`
        // column per task and flatten in `n` order, so the point list
        // is identical to the serial sweep at any thread count.
        let columns = equinox_par::parallel_map((1..=n_max).collect::<Vec<usize>>(), |n| {
            let mut column = Vec::new();
            for &freq_hz in &tech.frequencies_hz {
                let mut best: Option<EvaluatedDesign> = None;
                for w in 1..=w_max {
                    let m = max_m(n, w, freq_hz, &enc, tech);
                    if m == 0 {
                        continue;
                    }
                    let candidate = DesignPoint { n, w, m, freq_hz, encoding };
                    debug_assert!(candidate.is_feasible(tech));
                    let eval = candidate.evaluate(tech);
                    let better = match &best {
                        None => true,
                        Some(b) => {
                            eval.throughput_ops > b.throughput_ops
                                || (eval.throughput_ops == b.throughput_ops
                                    && eval.service_time_s < b.service_time_s)
                        }
                    };
                    if better {
                        best = Some(eval);
                    }
                }
                if let Some(b) = best {
                    column.push(b);
                }
            }
            column
        });
        let points: Vec<EvaluatedDesign> = columns.into_iter().flatten().collect();
        let frontier = pareto::pareto_frontier(&points);
        DesignSpace { encoding, tech: tech.clone(), points, frontier }
    }

    /// The encoding this space was swept for.
    pub fn encoding(&self) -> Encoding {
        self.encoding
    }

    /// The technology parameters used.
    pub fn technology(&self) -> &TechnologyParams {
        &self.tech
    }

    /// All swept design points (the small dots of Figure 6).
    pub fn points(&self) -> &[EvaluatedDesign] {
        &self.points
    }

    /// The Pareto-optimal designs (the large dots of Figure 6), sorted by
    /// ascending throughput.
    pub fn frontier(&self) -> &[EvaluatedDesign] {
        &self.frontier
    }

    /// The highest-throughput design whose batch service time satisfies
    /// `constraint` (Table 1's selection rule). Ties prefer the lower
    /// service time.
    pub fn best_under_latency(&self, constraint: LatencyConstraint) -> Option<EvaluatedDesign> {
        match constraint {
            LatencyConstraint::MinLatency => self
                .points
                .iter()
                .copied()
                .min_by(|a, b| {
                    a.service_time_s
                        .total_cmp(&b.service_time_s)
                        .then(b.throughput_ops.total_cmp(&a.throughput_ops))
                }),
            LatencyConstraint::Micros(us) => {
                let limit = us as f64 * 1e-6;
                self.points
                    .iter()
                    .filter(|p| p.service_time_s < limit)
                    .copied()
                    .max_by(|a, b| {
                        a.throughput_ops
                            .total_cmp(&b.throughput_ops)
                            .then(b.service_time_s.total_cmp(&a.service_time_s))
                    })
            }
            LatencyConstraint::None => self.points.iter().copied().max_by(|a, b| {
                a.throughput_ops
                    .total_cmp(&b.throughput_ops)
                    .then(b.service_time_s.total_cmp(&a.service_time_s))
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space(encoding: Encoding) -> DesignSpace {
        DesignSpace::sweep(encoding, &TechnologyParams::tsmc28())
    }

    #[test]
    fn sweep_produces_feasible_points_only() {
        let s = DesignSpace::sweep_with_limits(
            Encoding::Hbfp8,
            &TechnologyParams::tsmc28(),
            32,
            32,
        );
        let tech = TechnologyParams::tsmc28();
        for p in s.points() {
            assert!(p.design.is_feasible(&tech), "{}", p);
            assert!(p.area_mm2 <= tech.die_area_mm2 + 1e-9);
            assert!(p.power_w <= tech.power_budget_w + 1e-9);
        }
    }

    #[test]
    fn hbfp8_min_latency_matches_table1_shape() {
        let s = space(Encoding::Hbfp8);
        let min = s.best_under_latency(LatencyConstraint::MinLatency).unwrap();
        // Table 1: n = 1 at 532 MHz, ≈60 TOp/s, ≈16 µs.
        assert_eq!(min.design.n, 1, "{min}");
        assert_eq!(min.design.freq_hz, 532e6, "{min}");
        assert!(min.throughput_tops() > 40.0 && min.throughput_tops() < 80.0, "{min}");
        assert!(min.service_time_us() > 8.0 && min.service_time_us() < 30.0, "{min}");
    }

    #[test]
    fn hbfp8_relaxing_latency_multiplies_throughput() {
        let s = space(Encoding::Hbfp8);
        let min = s.best_under_latency(LatencyConstraint::MinLatency).unwrap();
        let l50 = s.best_under_latency(LatencyConstraint::Micros(50)).unwrap();
        let l500 = s.best_under_latency(LatencyConstraint::Micros(500)).unwrap();
        let none = s.best_under_latency(LatencyConstraint::None).unwrap();
        // Paper: 5.53× at 50 µs and 6.67× at 500 µs vs latency-optimal.
        let r50 = l50.throughput_ops / min.throughput_ops;
        let r500 = l500.throughput_ops / min.throughput_ops;
        assert!(r50 > 4.0 && r50 < 7.0, "50 µs ratio {r50}");
        assert!(r500 > 5.0 && r500 < 8.5, "500 µs ratio {r500}");
        assert!(none.throughput_ops >= l500.throughput_ops);
        // Moderate batching (n < 100 per the paper's observation) is
        // NOT required at 500 µs, but n must exceed the 50 µs pick.
        assert!(l500.design.n > l50.design.n);
    }

    #[test]
    fn bf16_saturates_early() {
        let s = space(Encoding::Bfloat16);
        let min = s.best_under_latency(LatencyConstraint::MinLatency).unwrap();
        let l500 = s.best_under_latency(LatencyConstraint::Micros(500)).unwrap();
        let none = s.best_under_latency(LatencyConstraint::None).unwrap();
        // Paper: 23.9 → 63.3 → 66.7 TOp/s: under 3× total.
        assert!(l500.throughput_ops / min.throughput_ops < 3.5);
        assert!(none.throughput_tops() < 100.0);
        // And bfloat16 cannot batch below 50 µs: the 50 µs pick equals
        // the min-latency design (Table 1's merged cell).
        let l50 = s.best_under_latency(LatencyConstraint::Micros(50)).unwrap();
        assert_eq!(l50.design.n, min.design.n);
    }

    #[test]
    fn hbfp8_beats_bf16_at_every_latency() {
        let h = space(Encoding::Hbfp8);
        let b = space(Encoding::Bfloat16);
        for c in [
            LatencyConstraint::MinLatency,
            LatencyConstraint::Micros(50),
            LatencyConstraint::Micros(500),
            LatencyConstraint::None,
        ] {
            let hd = h.best_under_latency(c).unwrap();
            let bd = b.best_under_latency(c).unwrap();
            assert!(
                hd.throughput_ops > 2.0 * bd.throughput_ops,
                "hbfp8 {hd} should dominate bf16 {bd}"
            );
        }
        // Paper: ≈5–6× at the unconstrained point.
        let hn = h.best_under_latency(LatencyConstraint::None).unwrap();
        let bn = b.best_under_latency(LatencyConstraint::None).unwrap();
        let ratio = hn.throughput_ops / bn.throughput_ops;
        assert!(ratio > 4.0 && ratio < 8.0, "ratio {ratio}");
    }

    #[test]
    fn unconstrained_hbfp8_near_400_tops() {
        let s = space(Encoding::Hbfp8);
        let none = s.best_under_latency(LatencyConstraint::None).unwrap();
        assert!(
            none.throughput_tops() > 300.0 && none.throughput_tops() < 500.0,
            "{none}"
        );
    }

    #[test]
    fn frontier_subset_of_points() {
        let s = DesignSpace::sweep_with_limits(
            Encoding::Hbfp8,
            &TechnologyParams::tsmc28(),
            64,
            32,
        );
        assert!(!s.frontier().is_empty());
        assert!(s.frontier().len() <= s.points().len());
    }

    #[test]
    fn min_latency_favors_lowest_frequency() {
        // Movement-bound designs favor the lowest frequency (§4.2).
        let s = space(Encoding::Hbfp8);
        let min = s.best_under_latency(LatencyConstraint::MinLatency).unwrap();
        assert_eq!(min.design.freq_hz, 532e6);
    }

    #[test]
    fn empty_constraint_when_impossible() {
        let s = space(Encoding::Hbfp8);
        // No design can answer in a nanosecond.
        assert!(s.best_under_latency(LatencyConstraint::Micros(0)).is_none());
    }
}
