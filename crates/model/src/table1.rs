//! Table 1: Pareto-optimal designs under various latency constraints.

use crate::design::EvaluatedDesign;
use crate::sweep::DesignSpace;
use equinox_arith::Encoding;

/// A latency constraint on the batch service time (Table 1's rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LatencyConstraint {
    /// Pick the design with the lowest achievable service time.
    MinLatency,
    /// Service time strictly below this many microseconds.
    Micros(u64),
    /// No constraint: maximize throughput.
    None,
}

impl LatencyConstraint {
    /// The four constraints of Table 1, in row order.
    pub fn table1_rows() -> [LatencyConstraint; 4] {
        [
            LatencyConstraint::MinLatency,
            LatencyConstraint::Micros(50),
            LatencyConstraint::Micros(500),
            LatencyConstraint::None,
        ]
    }

    /// The paper's row label.
    pub fn label(&self) -> String {
        match self {
            LatencyConstraint::MinLatency => "Min. latency".to_string(),
            LatencyConstraint::Micros(us) => format!("Latency < {us}us"),
            LatencyConstraint::None => "No constraint".to_string(),
        }
    }

    /// The `Equinox_c` configuration name used in §5/§6.
    pub fn config_name(&self) -> String {
        match self {
            LatencyConstraint::MinLatency => "Equinox_min".to_string(),
            LatencyConstraint::Micros(us) => format!("Equinox_{us}us"),
            LatencyConstraint::None => "Equinox_none".to_string(),
        }
    }
}

impl std::fmt::Display for LatencyConstraint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// One row of Table 1: the chosen design for each encoding under one
/// latency constraint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParetoTableRow {
    /// The latency constraint.
    pub constraint: LatencyConstraint,
    /// Best bfloat16 design, if any satisfies the constraint.
    pub bf16: Option<EvaluatedDesign>,
    /// Best hbfp8 design, if any satisfies the constraint.
    pub hbfp8: Option<EvaluatedDesign>,
}

/// The full Table 1 for both encodings.
#[derive(Debug, Clone)]
pub struct ParetoTable {
    /// Rows in the paper's order.
    pub rows: Vec<ParetoTableRow>,
}

impl ParetoTable {
    /// Builds Table 1 from already-swept design spaces.
    ///
    /// # Panics
    ///
    /// Panics if the spaces are not for the expected encodings.
    pub fn build(bf16_space: &DesignSpace, hbfp8_space: &DesignSpace) -> Self {
        assert_eq!(bf16_space.encoding(), Encoding::Bfloat16, "first space must be bfloat16");
        assert_eq!(hbfp8_space.encoding(), Encoding::Hbfp8, "second space must be hbfp8");
        let rows = LatencyConstraint::table1_rows()
            .into_iter()
            .map(|c| ParetoTableRow {
                constraint: c,
                bf16: bf16_space.best_under_latency(c),
                hbfp8: hbfp8_space.best_under_latency(c),
            })
            .collect();
        ParetoTable { rows }
    }

    /// The row for a given constraint.
    pub fn row(&self, constraint: LatencyConstraint) -> Option<&ParetoTableRow> {
        self.rows.iter().find(|r| r.constraint == constraint)
    }
}

impl std::fmt::Display for ParetoTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:<18} | {:>4} {:>6} {:>9} {:>8} | {:>4} {:>6} {:>9} {:>8}",
            "Latency", "n", "MHz", "Svc (us)", "TOp/s", "n", "MHz", "Svc (us)", "TOp/s"
        )?;
        writeln!(f, "{:<18} | {:^31} | {:^31}", "constraint", "bfloat16", "hbfp8")?;
        writeln!(f, "{}", "-".repeat(86))?;
        for row in &self.rows {
            let fmt_side = |d: &Option<EvaluatedDesign>| match d {
                Some(d) => format!(
                    "{:>4} {:>6.0} {:>9.1} {:>8.1}",
                    d.design.n,
                    d.design.freq_hz / 1e6,
                    d.service_time_us(),
                    d.throughput_tops()
                ),
                None => format!("{:>4} {:>6} {:>9} {:>8}", "-", "-", "-", "-"),
            };
            writeln!(
                f,
                "{:<18} | {} | {}",
                row.constraint.label(),
                fmt_side(&row.bf16),
                fmt_side(&row.hbfp8)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constants::TechnologyParams;

    #[test]
    fn constraint_labels() {
        assert_eq!(LatencyConstraint::MinLatency.label(), "Min. latency");
        assert_eq!(LatencyConstraint::Micros(50).label(), "Latency < 50us");
        assert_eq!(LatencyConstraint::None.label(), "No constraint");
        assert_eq!(LatencyConstraint::Micros(500).config_name(), "Equinox_500us");
        assert_eq!(LatencyConstraint::MinLatency.config_name(), "Equinox_min");
    }

    #[test]
    fn table_builds_and_prints() {
        let tech = TechnologyParams::tsmc28();
        let bf16 = DesignSpace::sweep(Encoding::Bfloat16, &tech);
        let hbfp8 = DesignSpace::sweep(Encoding::Hbfp8, &tech);
        let table = ParetoTable::build(&bf16, &hbfp8);
        assert_eq!(table.rows.len(), 4);
        let s = table.to_string();
        assert!(s.contains("Min. latency"));
        assert!(s.contains("No constraint"));
        // Every row has both sides populated for the standard platform.
        for row in &table.rows {
            assert!(row.bf16.is_some(), "{}", row.constraint);
            assert!(row.hbfp8.is_some(), "{}", row.constraint);
        }
    }

    #[test]
    fn rows_monotone_in_throughput() {
        let tech = TechnologyParams::tsmc28();
        let bf16 = DesignSpace::sweep(Encoding::Bfloat16, &tech);
        let hbfp8 = DesignSpace::sweep(Encoding::Hbfp8, &tech);
        let table = ParetoTable::build(&bf16, &hbfp8);
        for pair in table.rows.windows(2) {
            let t0 = pair[0].hbfp8.unwrap().throughput_ops;
            let t1 = pair[1].hbfp8.unwrap().throughput_ops;
            assert!(t1 >= t0, "relaxing latency must not reduce throughput");
        }
    }

    #[test]
    #[should_panic(expected = "first space must be bfloat16")]
    fn wrong_space_order_panics() {
        let tech = TechnologyParams::tsmc28();
        let hbfp8 = DesignSpace::sweep_with_limits(Encoding::Hbfp8, &tech, 4, 4);
        ParetoTable::build(&hbfp8, &hbfp8);
    }

    #[test]
    fn row_lookup() {
        let tech = TechnologyParams::tsmc28();
        let bf16 = DesignSpace::sweep_with_limits(Encoding::Bfloat16, &tech, 8, 8);
        let hbfp8 = DesignSpace::sweep_with_limits(Encoding::Hbfp8, &tech, 8, 8);
        let table = ParetoTable::build(&bf16, &hbfp8);
        assert!(table.row(LatencyConstraint::Micros(500)).is_some());
        assert!(table.row(LatencyConstraint::Micros(123)).is_none());
    }
}
