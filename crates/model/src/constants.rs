//! Technology calibration constants.
//!
//! The paper derives its per-ALU area/energy from Synopsys Design
//! Compiler synthesis in TSMC 28 nm (TCBN28HPMBWP35, 0.9 V), its SRAM
//! area/energy from CACTI 6.5 (32 nm scaled to 28 nm per Esmaeilzadeh et
//! al.), and its HBM interface numbers from Tran \[33\]. None of those
//! tools/libraries are redistributable, so this module substitutes
//! constants **back-derived from the paper's own published numbers** such
//! that the analytical model reproduces Table 1 and Table 3:
//!
//! * From Table 1, `T = 2·m·n²·w·f` gives the aggregate ALU count of each
//!   Pareto design. The ALU-bound designs (`n = 191`, hbfp8; `n = 39`,
//!   bfloat16) pin the per-MAC energies; the movement-bound designs
//!   (`n = 1`) pin the per-byte SRAM energy.
//! * The power budget available to the MMU + buffers is
//!   75 W − 28.6 W (HBM, Table 3) − SRAM leakage.
//! * The paper scales dynamic energy with frequency using near-threshold
//!   voltage/frequency data [Pahlevan et al., DATE'16]; we model supply
//!   voltage as linear in frequency from 0.6 V @ 532 MHz to 0.9 V @
//!   2.4 GHz and scale dynamic energy by `(V/V_nom)²`. This reproduces the
//!   paper's observations that movement-bound designs favor 532 MHz and
//!   ALU-bound hbfp8 designs peak at 610 MHz.

use equinox_arith::Encoding;

/// Per-encoding datapath constants (per-MAC ALU area and energy).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EncodingParams {
    /// Area of one multiply-accumulate ALU lane, mm².
    pub alu_area_mm2: f64,
    /// Energy of one multiply-accumulate, picojoules, at nominal 0.9 V.
    pub alu_energy_pj: f64,
    /// Buffer bytes occupied per value.
    pub bytes_per_value: f64,
}

impl EncodingParams {
    /// Constants for a given encoding.
    ///
    /// hbfp8 MACs are 8-bit multipliers with 25-bit accumulators; the
    /// bfloat16 MAC (with fp32 accumulation) costs ≈6× the energy and
    /// ≈4× the area, consistent with the paper's "order of magnitude
    /// improvement in ALU silicon density relative to floating point"
    /// and the Table 1 throughput ratio.
    pub fn for_encoding(encoding: Encoding) -> Self {
        match encoding {
            Encoding::Hbfp8 => EncodingParams {
                alu_area_mm2: 5.5e-4,
                alu_energy_pj: 0.475,
                bytes_per_value: 1.0,
            },
            Encoding::Bfloat16 => EncodingParams {
                alu_area_mm2: 2.2e-3,
                alu_energy_pj: 2.85,
                bytes_per_value: 2.0,
            },
            Encoding::Fp32 => EncodingParams {
                // fp32 is a software baseline; constants extrapolate the
                // bfloat16 MAC (≈4× energy, ≈3× area) and are unused by
                // the paper's experiments.
                alu_area_mm2: 6.6e-3,
                alu_energy_pj: 11.4,
                bytes_per_value: 4.0,
            },
        }
    }
}

/// Die-level technology and platform constants (§4.1, §5).
#[derive(Debug, Clone, PartialEq)]
pub struct TechnologyParams {
    /// Die area budget, mm² (300 mm², in line with reported DNN
    /// accelerator dies).
    pub die_area_mm2: f64,
    /// Total power envelope, W (75 W).
    pub power_budget_w: f64,
    /// Aggregate on-chip SRAM capacity, MB (75 MB: 20 activation + 50
    /// weight + 5 SIMD register file + instruction buffer).
    pub sram_capacity_mb: f64,
    /// SRAM area per MB, mm² (CACTI-substitute; reproduces Table 3's
    /// 45.96 mm² for the 50 MB weight buffer).
    pub sram_area_mm2_per_mb: f64,
    /// SRAM leakage per MB, W.
    pub sram_static_w_per_mb: f64,
    /// SRAM dynamic energy per byte accessed, pJ at nominal voltage.
    pub sram_energy_pj_per_byte: f64,
    /// HBM interface area, mm² (Tran \[33\]; Table 3).
    pub dram_area_mm2: f64,
    /// HBM interface + device power, W (Table 3).
    pub dram_power_w: f64,
    /// HBM stack bandwidth, bytes/s (1 TB/s, the largest commercially
    /// available at publication).
    pub dram_bandwidth_bytes_per_s: f64,
    /// Candidate operating frequencies, Hz (532 MHz – 2.4 GHz, from the
    /// near-threshold scaling study the paper cites).
    pub frequencies_hz: Vec<f64>,
    /// Supply voltage at the lowest frequency, V.
    pub vdd_min: f64,
    /// Nominal supply voltage (at the highest frequency), V.
    pub vdd_nom: f64,
    /// Reference inference request cost, Ops — the DeepBench LSTM with
    /// 2048 hidden units and 25 steps the paper uses for every latency
    /// number. Back-derived from Table 1 (`service_time × throughput /
    /// batch` is constant at 0.94 GOp across all eight designs).
    pub reference_request_ops: f64,
}

impl TechnologyParams {
    /// The paper's TSMC-28 nm evaluation platform.
    pub fn tsmc28() -> Self {
        TechnologyParams {
            die_area_mm2: 300.0,
            power_budget_w: 75.0,
            sram_capacity_mb: 75.0,
            sram_area_mm2_per_mb: 0.9192, // 45.96 mm² / 50 MB
            sram_static_w_per_mb: 0.032,
            sram_energy_pj_per_byte: 2.8,
            dram_area_mm2: 46.9,
            dram_power_w: 28.6,
            dram_bandwidth_bytes_per_s: 1.0e12,
            frequencies_hz: vec![
                532e6, 610e6, 700e6, 800e6, 920e6, 1.06e9, 1.22e9, 1.4e9, 1.6e9, 1.85e9,
                2.1e9, 2.4e9,
            ],
            vdd_min: 0.6,
            vdd_nom: 0.9,
            reference_request_ops: 0.94e9,
        }
    }

    /// Supply voltage at frequency `f_hz`, linear between the endpoints.
    pub fn vdd_at(&self, f_hz: f64) -> f64 {
        let f_min = 532e6;
        let f_max = 2.4e9;
        let f = f_hz.clamp(f_min, f_max);
        self.vdd_min + (self.vdd_nom - self.vdd_min) * (f - f_min) / (f_max - f_min)
    }

    /// Dynamic-energy scale factor at `f_hz` relative to nominal voltage:
    /// `(V(f)/V_nom)²`.
    pub fn energy_scale_at(&self, f_hz: f64) -> f64 {
        let r = self.vdd_at(f_hz) / self.vdd_nom;
        r * r
    }

    /// Area available for ALUs after SRAM and the HBM interface, mm².
    pub fn alu_area_budget_mm2(&self) -> f64 {
        self.die_area_mm2 - self.sram_area_mm2() - self.dram_area_mm2
    }

    /// Total SRAM area, mm².
    pub fn sram_area_mm2(&self) -> f64 {
        self.sram_capacity_mb * self.sram_area_mm2_per_mb
    }

    /// SRAM leakage power, W.
    pub fn sram_static_w(&self) -> f64 {
        self.sram_capacity_mb * self.sram_static_w_per_mb
    }

    /// Power available for MMU + buffer dynamic power, W.
    pub fn dynamic_power_budget_w(&self) -> f64 {
        self.power_budget_w - self.dram_power_w - self.sram_static_w()
    }
}

impl Default for TechnologyParams {
    fn default() -> Self {
        Self::tsmc28()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hbfp8_vs_bf16_density_ratio() {
        let h = EncodingParams::for_encoding(Encoding::Hbfp8);
        let b = EncodingParams::for_encoding(Encoding::Bfloat16);
        assert!((b.alu_energy_pj / h.alu_energy_pj - 6.0).abs() < 0.01);
        assert!((b.alu_area_mm2 / h.alu_area_mm2 - 4.0).abs() < 0.01);
        assert_eq!(h.bytes_per_value, 1.0);
        assert_eq!(b.bytes_per_value, 2.0);
    }

    #[test]
    fn budgets_match_paper() {
        let t = TechnologyParams::tsmc28();
        assert_eq!(t.die_area_mm2, 300.0);
        assert_eq!(t.power_budget_w, 75.0);
        // ≈44 W available for MMU + buffers.
        assert!((t.dynamic_power_budget_w() - 44.0).abs() < 0.5);
        // ALU budget leaves room for the ≈185 mm² MMU of Table 3.
        assert!(t.alu_area_budget_mm2() > 180.0);
        assert!(t.alu_area_budget_mm2() < 195.0);
    }

    #[test]
    fn voltage_scaling_endpoints() {
        let t = TechnologyParams::tsmc28();
        assert!((t.vdd_at(532e6) - 0.6).abs() < 1e-9);
        assert!((t.vdd_at(2.4e9) - 0.9).abs() < 1e-9);
        assert!((t.energy_scale_at(2.4e9) - 1.0).abs() < 1e-9);
        assert!((t.energy_scale_at(532e6) - (0.6f64 / 0.9).powi(2)).abs() < 1e-9);
        // Clamped outside the range.
        assert_eq!(t.vdd_at(100e6), 0.6);
        assert_eq!(t.vdd_at(5e9), 0.9);
    }

    #[test]
    fn energy_scale_monotone_in_frequency() {
        let t = TechnologyParams::tsmc28();
        let freqs = &t.frequencies_hz;
        for pair in freqs.windows(2) {
            assert!(t.energy_scale_at(pair[0]) < t.energy_scale_at(pair[1]));
        }
    }

    #[test]
    fn frequency_list_covers_paper_range() {
        let t = TechnologyParams::tsmc28();
        assert_eq!(t.frequencies_hz.first().copied(), Some(532e6));
        assert_eq!(t.frequencies_hz.last().copied(), Some(2.4e9));
        assert!(t.frequencies_hz.contains(&610e6));
    }

    #[test]
    fn reference_ops_matches_table1_products() {
        // service_time × throughput / batch from Table 1 rows:
        // hbfp8 n=1: 15.6 µs × 60.2 TOp/s = 0.939 GOp.
        let t = TechnologyParams::tsmc28();
        let derived = 15.6e-6 * 60.2e12;
        assert!((t.reference_request_ops - derived).abs() / derived < 0.01);
    }
}
