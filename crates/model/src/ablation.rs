//! Ablations of the §4 design choices: how the Pareto-optimal designs
//! react to the platform parameters the paper fixes (power envelope,
//! SRAM capacity, DRAM power, frequency/voltage scaling).
//!
//! These quantify the sensitivity of the headline "relax latency → 6×
//! throughput" result to the calibration constants, which DESIGN.md
//! flags as the substituted inputs.

use crate::constants::TechnologyParams;
use crate::sweep::DesignSpace;
use crate::table1::LatencyConstraint;
use equinox_arith::Encoding;

/// One ablation point: a platform variation and the resulting designs.
#[derive(Debug, Clone)]
pub struct AblationPoint {
    /// Description of the variation (e.g. `power=50W`).
    pub label: String,
    /// Min-latency design throughput, TOp/s.
    pub min_tops: f64,
    /// 500 µs design throughput, TOp/s.
    pub relaxed_tops: f64,
    /// The headline ratio between them.
    pub ratio: f64,
}

/// Runs one sweep and extracts the headline pair.
fn measure(label: String, tech: &TechnologyParams, encoding: Encoding) -> Option<AblationPoint> {
    let space = DesignSpace::sweep(encoding, tech);
    let min = space.best_under_latency(LatencyConstraint::MinLatency)?;
    let relaxed = space.best_under_latency(LatencyConstraint::Micros(500))?;
    Some(AblationPoint {
        label,
        min_tops: min.throughput_tops(),
        relaxed_tops: relaxed.throughput_tops(),
        ratio: relaxed.throughput_ops / min.throughput_ops,
    })
}

/// Sweeps the total power envelope (the paper fixes 75 W).
pub fn power_envelope_ablation(encoding: Encoding) -> Vec<AblationPoint> {
    [40.0, 55.0, 75.0, 100.0, 150.0]
        .into_iter()
        .filter_map(|w| {
            let mut tech = TechnologyParams::tsmc28();
            tech.power_budget_w = w;
            measure(format!("power={w:.0}W"), &tech, encoding)
        })
        .collect()
}

/// Sweeps the on-chip SRAM capacity (the paper fixes 75 MB).
pub fn sram_capacity_ablation(encoding: Encoding) -> Vec<AblationPoint> {
    [25.0, 50.0, 75.0, 100.0, 150.0]
        .into_iter()
        .filter_map(|mb| {
            let mut tech = TechnologyParams::tsmc28();
            tech.sram_capacity_mb = mb;
            measure(format!("sram={mb:.0}MB"), &tech, encoding)
        })
        .collect()
}

/// Disables the frequency/voltage energy scaling (energy constant at
/// the nominal voltage) to show why the paper's optimal designs favor
/// low frequencies.
pub fn voltage_scaling_ablation(encoding: Encoding) -> [Option<AblationPoint>; 2] {
    let scaled = measure("with V/f scaling".into(), &TechnologyParams::tsmc28(), encoding);
    let mut flat_tech = TechnologyParams::tsmc28();
    flat_tech.vdd_min = flat_tech.vdd_nom;
    let flat = measure("flat energy".into(), &flat_tech, encoding);
    [scaled, flat]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_power_more_throughput() {
        let pts = power_envelope_ablation(Encoding::Hbfp8);
        assert!(pts.len() >= 4);
        for pair in pts.windows(2) {
            assert!(
                pair[1].relaxed_tops >= pair[0].relaxed_tops * 0.99,
                "{} -> {}",
                pair[0].label,
                pair[1].label
            );
        }
        // The relax-latency ratio survives across the envelope range.
        for p in &pts {
            assert!(p.ratio > 3.0, "{}: ratio {}", p.label, p.ratio);
        }
    }

    #[test]
    fn sram_capacity_trades_alu_area() {
        let pts = sram_capacity_ablation(Encoding::Hbfp8);
        // More SRAM leaves less die for ALUs: relaxed throughput should
        // not increase with capacity.
        let first = pts.first().unwrap();
        let last = pts.last().unwrap();
        assert!(
            last.relaxed_tops <= first.relaxed_tops * 1.01,
            "{} {} -> {} {}",
            first.label,
            first.relaxed_tops,
            last.label,
            last.relaxed_tops
        );
    }

    #[test]
    fn voltage_scaling_is_load_bearing() {
        // Without voltage scaling every design runs at the same
        // energy/op, so the min-latency design no longer prefers the
        // lowest frequency and the achievable relaxed throughput rises.
        let [scaled, flat] = voltage_scaling_ablation(Encoding::Hbfp8);
        let scaled = scaled.unwrap();
        let flat = flat.unwrap();
        assert!(
            flat.relaxed_tops < scaled.relaxed_tops,
            "flat energy at nominal V must reduce throughput: {} vs {}",
            flat.relaxed_tops,
            scaled.relaxed_tops
        );
    }
}
