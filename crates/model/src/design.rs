//! Design points and their evaluation under the §4.1 analytical models.

use crate::constants::{EncodingParams, TechnologyParams};
use equinox_arith::Encoding;

/// A candidate accelerator configuration in the §4 design space.
///
/// The MMU is `m` systolic arrays of `n × n` processing elements, each
/// processing `w` values, clocked at `freq_hz`. Vector-matrix models
/// (RNN/MLP) need a batch size of at least `n` to fully utilize the MMU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignPoint {
    /// Systolic array dimension (and minimum batch size).
    pub n: usize,
    /// Width of each processing element (values per PE).
    pub w: usize,
    /// Number of systolic arrays.
    pub m: usize,
    /// Operating frequency, Hz.
    pub freq_hz: f64,
    /// Datapath numeric encoding.
    pub encoding: Encoding,
}

impl DesignPoint {
    /// Total number of multiply-accumulate ALUs: `m·n²·w`.
    pub fn alu_count(&self) -> f64 {
        self.m as f64 * (self.n as f64) * (self.n as f64) * self.w as f64
    }

    /// Total area under Eq. 1, mm².
    pub fn area_mm2(&self, tech: &TechnologyParams) -> f64 {
        let enc = EncodingParams::for_encoding(self.encoding);
        self.alu_count() * enc.alu_area_mm2 + tech.sram_area_mm2() + tech.dram_area_mm2
    }

    /// Total power under Eq. 2, W.
    ///
    /// Dynamic energy is scaled by the frequency/voltage factor of
    /// [`TechnologyParams::energy_scale_at`]; the SRAM traffic term
    /// `w·n + m·w·n + m·n` (activations read, weights read, outputs
    /// written per cycle, in values) is multiplied by the encoding's
    /// bytes per value.
    pub fn power_w(&self, tech: &TechnologyParams) -> f64 {
        let enc = EncodingParams::for_encoding(self.encoding);
        let (n, m, w) = (self.n as f64, self.m as f64, self.w as f64);
        let scale = tech.energy_scale_at(self.freq_hz);
        let alu_pj = self.alu_count() * enc.alu_energy_pj;
        let traffic_values = w * n + m * w * n + m * n;
        let sram_pj = tech.sram_energy_pj_per_byte * enc.bytes_per_value * traffic_values;
        self.freq_hz * scale * (alu_pj + sram_pj) * 1e-12
            + tech.dram_power_w
            + tech.sram_static_w()
    }

    /// Peak throughput under Eq. 3, Ops/s (each ALU does a multiply and
    /// an accumulate per cycle).
    pub fn throughput_ops(&self) -> f64 {
        2.0 * self.alu_count() * self.freq_hz
    }

    /// Inference service time of one batch of `n` reference (LSTM)
    /// requests, seconds: compute time at peak throughput plus the
    /// systolic fill of the first tile.
    pub fn service_time_s(&self, tech: &TechnologyParams) -> f64 {
        let batch_ops = self.n as f64 * tech.reference_request_ops;
        let fill_cycles = 2.0 * self.n as f64 + self.w as f64;
        batch_ops / self.throughput_ops() + fill_cycles / self.freq_hz
    }

    /// True if the design fits both envelopes.
    pub fn is_feasible(&self, tech: &TechnologyParams) -> bool {
        self.m >= 1
            && self.w >= 1
            && self.n >= 1
            && self.area_mm2(tech) <= tech.die_area_mm2
            && self.power_w(tech) <= tech.power_budget_w
    }

    /// Evaluates the design, capturing its metrics.
    pub fn evaluate(self, tech: &TechnologyParams) -> EvaluatedDesign {
        EvaluatedDesign {
            area_mm2: self.area_mm2(tech),
            power_w: self.power_w(tech),
            throughput_ops: self.throughput_ops(),
            service_time_s: self.service_time_s(tech),
            design: self,
        }
    }
}

impl std::fmt::Display for DesignPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} n={} w={} m={} @{:.0} MHz",
            self.encoding,
            self.n,
            self.w,
            self.m,
            self.freq_hz / 1e6
        )
    }
}

/// A design point with its evaluated metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvaluatedDesign {
    /// The configuration.
    pub design: DesignPoint,
    /// Eq. 1 area, mm².
    pub area_mm2: f64,
    /// Eq. 2 power, W.
    pub power_w: f64,
    /// Eq. 3 peak throughput, Ops/s.
    pub throughput_ops: f64,
    /// Batch-of-n reference service time, s.
    pub service_time_s: f64,
}

impl EvaluatedDesign {
    /// Throughput in TOp/s (the paper's unit).
    pub fn throughput_tops(&self) -> f64 {
        self.throughput_ops / 1e12
    }

    /// Service time in microseconds (the paper's unit).
    pub fn service_time_us(&self) -> f64 {
        self.service_time_s * 1e6
    }
}

impl std::fmt::Display for EvaluatedDesign {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} -> {:.1} TOp/s, {:.1} µs, {:.1} mm², {:.1} W",
            self.design,
            self.throughput_tops(),
            self.service_time_us(),
            self.area_mm2,
            self.power_w
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(n: usize, w: usize, m: usize, f: f64, e: Encoding) -> DesignPoint {
        DesignPoint { n, w, m, freq_hz: f, encoding: e }
    }

    #[test]
    fn alu_count_formula() {
        let d = point(4, 3, 2, 532e6, Encoding::Hbfp8);
        assert_eq!(d.alu_count(), 2.0 * 16.0 * 3.0);
    }

    #[test]
    fn throughput_formula() {
        let d = point(10, 2, 5, 1e9, Encoding::Hbfp8);
        // 2 * 5*100*2 * 1e9 = 2e12.
        assert_eq!(d.throughput_ops(), 2e12);
    }

    #[test]
    fn area_includes_fixed_components() {
        let tech = TechnologyParams::tsmc28();
        let d = point(1, 1, 1, 532e6, Encoding::Hbfp8);
        let fixed = tech.sram_area_mm2() + tech.dram_area_mm2;
        assert!(d.area_mm2(&tech) > fixed);
        assert!(d.area_mm2(&tech) < fixed + 0.01);
    }

    #[test]
    fn power_floor_is_dram_plus_leakage() {
        let tech = TechnologyParams::tsmc28();
        let d = point(1, 1, 1, 532e6, Encoding::Hbfp8);
        let floor = tech.dram_power_w + tech.sram_static_w();
        assert!(d.power_w(&tech) > floor);
        assert!(d.power_w(&tech) < floor + 0.1);
    }

    #[test]
    fn bf16_same_dims_costs_more_power() {
        let tech = TechnologyParams::tsmc28();
        let h = point(8, 4, 16, 610e6, Encoding::Hbfp8);
        let b = point(8, 4, 16, 610e6, Encoding::Bfloat16);
        assert!(b.power_w(&tech) > h.power_w(&tech));
        assert!(b.area_mm2(&tech) > h.area_mm2(&tech));
        assert_eq!(b.throughput_ops(), h.throughput_ops());
    }

    #[test]
    fn higher_frequency_costs_superlinear_power() {
        let tech = TechnologyParams::tsmc28();
        let lo = point(8, 4, 16, 532e6, Encoding::Hbfp8);
        let hi = point(8, 4, 16, 1064e6, Encoding::Hbfp8);
        let dyn_lo = lo.power_w(&tech) - tech.dram_power_w - tech.sram_static_w();
        let dyn_hi = hi.power_w(&tech) - tech.dram_power_w - tech.sram_static_w();
        // Doubling f more than doubles dynamic power (voltage rises too).
        assert!(dyn_hi > 2.0 * dyn_lo);
    }

    #[test]
    fn service_time_grows_with_batch() {
        let tech = TechnologyParams::tsmc28();
        let small = point(1, 4, 16, 610e6, Encoding::Hbfp8).evaluate(&tech);
        let large = point(64, 4, 16, 610e6, Encoding::Hbfp8).evaluate(&tech);
        // Same ALU count per n²? No — n changes ALU count; compare per-op:
        // larger n at equal throughput must have longer service time.
        // Construct equal-throughput designs instead:
        let t_small = small.design.throughput_ops();
        let t_large = large.design.throughput_ops();
        let norm_small = small.service_time_s * t_small;
        let norm_large = large.service_time_s * t_large;
        assert!(norm_large > norm_small);
    }

    #[test]
    fn infeasible_when_too_big() {
        let tech = TechnologyParams::tsmc28();
        let d = point(256, 64, 64, 2.4e9, Encoding::Hbfp8);
        assert!(!d.is_feasible(&tech));
    }

    #[test]
    fn feasible_small_design() {
        let tech = TechnologyParams::tsmc28();
        let d = point(1, 1, 1, 532e6, Encoding::Hbfp8);
        assert!(d.is_feasible(&tech));
    }

    #[test]
    fn display_formats() {
        let tech = TechnologyParams::tsmc28();
        let e = point(16, 4, 8, 532e6, Encoding::Hbfp8).evaluate(&tech);
        let s = e.to_string();
        assert!(s.contains("hbfp8"));
        assert!(s.contains("532 MHz"));
        assert!(s.contains("TOp/s"));
    }
}
