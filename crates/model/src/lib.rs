//! # equinox-model
//!
//! First-order analytical models and design-space exploration from §4 of
//! the Equinox paper.
//!
//! The paper jointly optimizes an accelerator's matrix-multiply-unit
//! dimensions — `m` systolic arrays of `n × n` processing elements, each
//! `w` values wide — and its operating frequency, under a 300 mm² die and
//! 75 W power envelope, producing a Pareto frontier of inference latency
//! against throughput (Figure 6) and the four named configurations of
//! Table 1 (`Equinox_min`, `Equinox_50µs`, `Equinox_500µs`,
//! `Equinox_none`).
//!
//! The three governing equations are implemented verbatim:
//!
//! * Area (Eq. 1): `A = m·n²·w·a_alu + A_sram + A_dram`
//! * Power (Eq. 2): `P = f·(m·n²·w·e_alu + e_sram·(w·n + m·w·n + m·n)) +
//!   P_dram + P_static`, with the frequency-dependent energy scaling of
//!   [Pahlevan et al., DATE'16] applied to the dynamic term.
//! * Throughput (Eq. 3): `T = 2·m·n²·w·f`
//!
//! Calibration constants replace the paper's Synopsys/TSMC-28 nm and
//! CACTI inputs; see [`constants`] for the derivation from the paper's
//! published numbers.
//!
//! ## Example
//!
//! ```
//! use equinox_model::{DesignSpace, LatencyConstraint, TechnologyParams};
//! use equinox_arith::Encoding;
//!
//! let space = DesignSpace::sweep(Encoding::Hbfp8, &TechnologyParams::tsmc28());
//! let best = space
//!     .best_under_latency(LatencyConstraint::Micros(500))
//!     .expect("a design exists under 500 µs");
//! // Relaxing latency to 500 µs buys >5x the latency-optimal throughput.
//! let min = space.best_under_latency(LatencyConstraint::MinLatency).unwrap();
//! assert!(best.throughput_tops() > 5.0 * min.throughput_tops());
//! ```

pub mod ablation;
pub mod constants;
pub mod design;
pub mod pareto;
pub mod report;
pub mod sweep;
pub mod table1;

pub use constants::{EncodingParams, TechnologyParams};
pub use design::{DesignPoint, EvaluatedDesign};
pub use sweep::DesignSpace;
pub use table1::{LatencyConstraint, ParetoTable, ParetoTableRow};
