//! Pareto-frontier extraction over (throughput ↑, service time ↓).

use crate::design::EvaluatedDesign;

/// Returns the Pareto-optimal subset: designs for which no other design
/// has both higher-or-equal throughput and lower-or-equal service time
/// (with at least one strict). The result is sorted by ascending
/// throughput (and therefore ascending service time).
pub fn pareto_frontier(points: &[EvaluatedDesign]) -> Vec<EvaluatedDesign> {
    let mut sorted: Vec<EvaluatedDesign> = points.to_vec();
    // Sort by throughput descending, then service time ascending.
    sorted.sort_by(|a, b| {
        b.throughput_ops
            .total_cmp(&a.throughput_ops)
            .then(a.service_time_s.total_cmp(&b.service_time_s))
    });
    let mut frontier: Vec<EvaluatedDesign> = Vec::new();
    let mut best_latency = f64::INFINITY;
    for p in sorted {
        if p.service_time_s < best_latency {
            best_latency = p.service_time_s;
            frontier.push(p);
        }
    }
    frontier.reverse();
    frontier
}

/// True if `a` dominates `b` (at least as good on both axes, strictly
/// better on one).
pub fn dominates(a: &EvaluatedDesign, b: &EvaluatedDesign) -> bool {
    let ge_throughput = a.throughput_ops >= b.throughput_ops;
    let le_latency = a.service_time_s <= b.service_time_s;
    let strict = a.throughput_ops > b.throughput_ops || a.service_time_s < b.service_time_s;
    ge_throughput && le_latency && strict
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::DesignPoint;
    use equinox_arith::check;
    use equinox_arith::Encoding;

    fn eval(throughput: f64, latency: f64) -> EvaluatedDesign {
        EvaluatedDesign {
            design: DesignPoint {
                n: 1,
                w: 1,
                m: 1,
                freq_hz: 532e6,
                encoding: Encoding::Hbfp8,
            },
            area_mm2: 0.0,
            power_w: 0.0,
            throughput_ops: throughput,
            service_time_s: latency,
        }
    }

    #[test]
    fn empty_input() {
        assert!(pareto_frontier(&[]).is_empty());
    }

    #[test]
    fn single_point_is_frontier() {
        let f = pareto_frontier(&[eval(1.0, 1.0)]);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn dominated_point_removed() {
        let a = eval(10.0, 1.0);
        let b = eval(5.0, 2.0); // worse on both axes
        let f = pareto_frontier(&[a, b]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].throughput_ops, 10.0);
    }

    #[test]
    fn tradeoff_points_kept() {
        let a = eval(10.0, 2.0);
        let b = eval(5.0, 1.0);
        let f = pareto_frontier(&[a, b]);
        assert_eq!(f.len(), 2);
        // Sorted by ascending throughput.
        assert!(f[0].throughput_ops < f[1].throughput_ops);
    }

    #[test]
    fn duplicate_points_collapse() {
        let f = pareto_frontier(&[eval(5.0, 1.0), eval(5.0, 1.0)]);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn dominates_relation() {
        assert!(dominates(&eval(10.0, 1.0), &eval(5.0, 2.0)));
        assert!(dominates(&eval(10.0, 1.0), &eval(10.0, 2.0)));
        assert!(!dominates(&eval(10.0, 1.0), &eval(10.0, 1.0)));
        assert!(!dominates(&eval(10.0, 2.0), &eval(5.0, 1.0)));
    }

    #[test]
    fn frontier_has_no_dominated_pairs() {
        check::check(0x706101, |g| {
            let len = g.usize_in(1, 40);
            let evals: Vec<EvaluatedDesign> = (0..len)
                .map(|_| eval(g.f64_in(1.0, 100.0), g.f64_in(1.0, 100.0)))
                .collect();
            let frontier = pareto_frontier(&evals);
            for a in &frontier {
                for b in &frontier {
                    assert!(!dominates(a, b) || std::ptr::eq(a, b));
                }
            }
            // Every input is dominated by or equal to some frontier point.
            for p in &evals {
                assert!(frontier.iter().any(|f| dominates(f, p)
                    || (f.throughput_ops == p.throughput_ops
                        && f.service_time_s == p.service_time_s)));
            }
            // Frontier is sorted by throughput ascending and latency ascending.
            for pair in frontier.windows(2) {
                assert!(pair[0].throughput_ops <= pair[1].throughput_ops);
                assert!(pair[0].service_time_s <= pair[1].service_time_s);
            }
        });
    }
}
