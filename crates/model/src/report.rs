//! Text rendering of Figure 6 data (latency-vs-throughput scatter).

use crate::design::EvaluatedDesign;
use crate::sweep::DesignSpace;

/// One point of the Figure 6 scatter as a CSV-friendly record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScatterPoint {
    /// Throughput, TOp/s (the paper's x-axis).
    pub throughput_tops: f64,
    /// Batch service time, µs (the paper's y-axis).
    pub latency_us: f64,
    /// Whether the point lies on the Pareto frontier (large dot).
    pub on_frontier: bool,
    /// Systolic dimension n.
    pub n: usize,
    /// Frequency, MHz.
    pub freq_mhz: f64,
}

/// Extracts the Figure 6 scatter from a swept design space.
pub fn figure6_scatter(space: &DesignSpace) -> Vec<ScatterPoint> {
    let on_frontier = |p: &EvaluatedDesign| {
        space.frontier().iter().any(|f| {
            f.design.n == p.design.n
                && f.design.w == p.design.w
                && f.design.m == p.design.m
                && f.design.freq_hz == p.design.freq_hz
        })
    };
    space
        .points()
        .iter()
        .map(|p| ScatterPoint {
            throughput_tops: p.throughput_tops(),
            latency_us: p.service_time_us(),
            on_frontier: on_frontier(p),
            n: p.design.n,
            freq_mhz: p.design.freq_hz / 1e6,
        })
        .collect()
}

/// Renders the scatter as CSV with a header row, matching the series the
/// paper plots.
pub fn figure6_csv(space: &DesignSpace) -> String {
    let mut out = String::from("throughput_tops,latency_us,on_frontier,n,freq_mhz\n");
    for p in figure6_scatter(space) {
        out.push_str(&format!(
            "{:.2},{:.2},{},{},{:.0}\n",
            p.throughput_tops, p.latency_us, p.on_frontier, p.n, p.freq_mhz
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constants::TechnologyParams;
    use equinox_arith::Encoding;

    #[test]
    fn scatter_marks_frontier() {
        let space = DesignSpace::sweep_with_limits(
            Encoding::Hbfp8,
            &TechnologyParams::tsmc28(),
            16,
            16,
        );
        let scatter = figure6_scatter(&space);
        assert_eq!(scatter.len(), space.points().len());
        let frontier_count = scatter.iter().filter(|p| p.on_frontier).count();
        assert_eq!(frontier_count, space.frontier().len());
        assert!(frontier_count >= 1);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let space = DesignSpace::sweep_with_limits(
            Encoding::Hbfp8,
            &TechnologyParams::tsmc28(),
            4,
            4,
        );
        let csv = figure6_csv(&space);
        let lines: Vec<&str> = csv.lines().collect();
        assert!(lines[0].starts_with("throughput_tops"));
        assert_eq!(lines.len(), space.points().len() + 1);
    }
}
