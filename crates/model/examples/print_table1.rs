//! Prints the Table 1 accelerator family for both encodings.
use equinox_model::*;
use equinox_arith::Encoding;
fn main() {
    let tech = TechnologyParams::tsmc28();
    let b = DesignSpace::sweep(Encoding::Bfloat16, &tech);
    let h = DesignSpace::sweep(Encoding::Hbfp8, &tech);
    println!("{}", ParetoTable::build(&b, &h));
}
