//! Fitted distributional surrogate tables.
//!
//! [`FittedTable`] is the third fidelity tier between the conservative
//! static-bounds envelope and the full discrete-event engine: a
//! per-(model, batch) family of service-time and energy *quantile
//! grids*, one grid per queue-depth ("contention") bucket, fitted
//! offline against [`equinox_sim::Simulation::run_sampled`] traces by
//! the `fitted` regen driver. A fitted device draws each batch's
//! occupancy, contention stretch, and energy from the grid matching the
//! queue depth at service start, by deterministic inverse-CDF
//! interpolation on a seeded uniform.
//!
//! ## Soundness: the clamp contract
//!
//! Every number a table can ever return is clamped — at fit time, at
//! construction (validated), and defensively again at draw time — into
//! the calibrated static envelope of the served program:
//!
//! - occupancy ∈ `[lower_cycles, upper_cycles]` (the
//!   `equinox_check::bounds` cycle envelope, calibrated by the `bounds`
//!   regen gate);
//! - stretch ∈ `[1, MAX_STRETCH]` — the engine's fair-share floor
//!   guarantees inference at least half the MMU while training co-runs
//!   (`r_train ≤ 0.5`), so wall-clock duration never exceeds
//!   `2 × occupancy`;
//! - energy ∈ `[energy_lower_j, energy_upper_j]` (the static energy
//!   envelope).
//!
//! So a fitted sample can never leave the `[lower, upper]` interval the
//! bounds gate validated, whatever the fitting data looked like.
//!
//! ## Lookup cost
//!
//! Bucket selection is a partition-point binary search over the sorted
//! `bucket_edges` — O(log n) with instrumented probe counters
//! ([`FittedTable::probe_count`]) so a scaling test can prove a
//! 256-device sweep never degrades to linear scans.

use equinox_isa::EquinoxError;
use equinox_sim::BatchSample;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of quantile points per grid: `q_i = i / (GRID_POINTS − 1)`
/// for `i = 0..GRID_POINTS`, i.e. the min, the octiles, and the max.
pub const GRID_POINTS: usize = 9;

/// Upper clamp on the contention stretch (wall-clock duration over
/// occupancy). The engine's schedulers cap the training MMU share at
/// the fair half (`r_train ≤ 0.5`, further reduced by DRAM starvation
/// and priority preemption), so `r_inf ≥ 0.5` whenever inference is in
/// flight and no batch can stretch beyond 2×.
pub const MAX_STRETCH: f64 = 2.0;

/// One batch drawn from a fitted table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FittedDraw {
    /// MMU cycles of actual inference work (inside the static cycle
    /// envelope).
    pub occupancy_cycles: f64,
    /// Wall-clock cycles from service start to completion:
    /// `occupancy × stretch`, the stretch covering training co-run
    /// contention.
    pub duration_cycles: f64,
    /// Inference energy of the batch, joules (inside the static energy
    /// envelope).
    pub energy_j: f64,
}

/// The quantile grid of one contention bucket: empirical quantiles of
/// the batch occupancy, stretch, and energy at [`GRID_POINTS`] evenly
/// spaced probabilities. All three vectors are non-decreasing, so
/// drawing them comonotonically (one uniform drives all three) yields
/// valid marginals with the physically sensible "slow batches cost
/// more" coupling.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileGrid {
    /// Number of fitting samples that landed in this bucket (0 for an
    /// unobserved bucket, which serves conservatively at the envelope
    /// ceiling).
    pub count: usize,
    /// Occupancy-cycle quantiles, non-decreasing, inside the cycle
    /// envelope.
    pub occupancy_cycles: Vec<f64>,
    /// Stretch quantiles, non-decreasing, in `[1, MAX_STRETCH]`.
    pub stretch: Vec<f64>,
    /// Energy quantiles in joules, non-decreasing, inside the energy
    /// envelope.
    pub energy_j: Vec<f64>,
}

impl QuantileGrid {
    /// The conservative grid for a bucket with no fitting samples:
    /// every draw serves at the envelope ceiling (occupancy and energy
    /// at the upper bound, maximally stretched), which is the
    /// static-bounds surrogate's behaviour made pessimistic about
    /// contention too.
    fn ceiling(upper_cycles: u64, energy_upper_j: f64) -> QuantileGrid {
        QuantileGrid {
            count: 0,
            occupancy_cycles: vec![upper_cycles as f64; GRID_POINTS],
            stretch: vec![MAX_STRETCH; GRID_POINTS],
            energy_j: vec![energy_upper_j; GRID_POINTS],
        }
    }
}

/// A fitted distributional surrogate table for one (model, batch) cell.
///
/// Shared across devices via `Arc` (256 fitted devices reference one
/// table). `PartialEq` compares the fitted content only — the lookup
/// instrumentation counters are diagnostics, not state.
#[derive(Debug)]
pub struct FittedTable {
    /// Name of the served model (matches `ModelSpec::name`).
    pub model: String,
    /// Batch size the table was fitted at; must equal the device
    /// timing's batch ([`crate::Fleet::new`] enforces this).
    pub batch: usize,
    /// Static lower cycle bound of the served program.
    pub lower_cycles: u64,
    /// Static upper cycle bound of the served program.
    pub upper_cycles: u64,
    /// Static lower energy bound per batch, joules.
    pub energy_lower_j: f64,
    /// Static upper energy bound per batch, joules.
    pub energy_upper_j: f64,
    /// Sorted, strictly increasing queue-depth bucket boundaries:
    /// depth `< edges[0]` is bucket 0, `edges[i-1] ≤ depth < edges[i]`
    /// is bucket `i`, and `depth ≥ edges.last()` is the last bucket.
    bucket_edges: Vec<usize>,
    /// One grid per bucket; `len == bucket_edges.len() + 1`.
    buckets: Vec<QuantileGrid>,
    /// Binary-search halving steps taken across all lookups.
    probes: AtomicU64,
    /// Total [`FittedTable::bucket_index`] calls.
    lookups: AtomicU64,
}

impl PartialEq for FittedTable {
    fn eq(&self, other: &Self) -> bool {
        self.model == other.model
            && self.batch == other.batch
            && self.lower_cycles == other.lower_cycles
            && self.upper_cycles == other.upper_cycles
            && self.energy_lower_j == other.energy_lower_j
            && self.energy_upper_j == other.energy_upper_j
            && self.bucket_edges == other.bucket_edges
            && self.buckets == other.buckets
    }
}

/// Linear-interpolation quantile of an ascending-sorted slice — the
/// estimator [`FittedTable::fit`] builds its grids with, exported so
/// the calibration gate can hold held-out sim runs against the fitted
/// grids with the *same* estimator (any mismatch would show up as
/// calibration error that is really just estimator skew).
pub fn sorted_quantile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let pos = q * (sorted.len() - 1) as f64;
    let k = (pos.floor() as usize).min(sorted.len() - 1);
    let frac = pos - k as f64;
    if frac <= 0.0 || k + 1 >= sorted.len() {
        sorted[k]
    } else {
        sorted[k] + (sorted[k + 1] - sorted[k]) * frac
    }
}

impl FittedTable {
    /// Builds a table from already-computed grids, validating every
    /// invariant the sampler relies on.
    ///
    /// # Errors
    ///
    /// [`EquinoxError::InvalidArgument`] when the envelope is
    /// degenerate, the edges are not strictly increasing, the bucket
    /// count does not match, or any grid value is non-finite, out of
    /// its envelope, or not non-decreasing.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        model: impl Into<String>,
        batch: usize,
        lower_cycles: u64,
        upper_cycles: u64,
        energy_lower_j: f64,
        energy_upper_j: f64,
        bucket_edges: Vec<usize>,
        buckets: Vec<QuantileGrid>,
    ) -> Result<FittedTable, EquinoxError> {
        const API: &str = "FittedTable::new";
        let err = |message: String| Err(EquinoxError::invalid_argument(API, message));
        if batch == 0 {
            return err("batch must be >= 1".into());
        }
        if lower_cycles == 0 || lower_cycles > upper_cycles {
            return err(format!(
                "cycle envelope must satisfy 0 < lower <= upper, got [{lower_cycles}, {upper_cycles}]"
            ));
        }
        if !(energy_lower_j.is_finite()
            && energy_upper_j.is_finite()
            && 0.0 <= energy_lower_j
            && energy_lower_j <= energy_upper_j)
        {
            return err(format!(
                "energy envelope must satisfy 0 <= lower <= upper (finite), got [{energy_lower_j}, {energy_upper_j}]"
            ));
        }
        if bucket_edges.windows(2).any(|w| w[0] >= w[1]) {
            return err("bucket_edges must be strictly increasing".into());
        }
        if buckets.len() != bucket_edges.len() + 1 {
            return err(format!(
                "need {} buckets for {} edges, got {}",
                bucket_edges.len() + 1,
                bucket_edges.len(),
                buckets.len()
            ));
        }
        for (b, grid) in buckets.iter().enumerate() {
            let lanes: [(&str, &[f64], f64, f64); 3] = [
                ("occupancy_cycles", &grid.occupancy_cycles, lower_cycles as f64, upper_cycles as f64),
                ("stretch", &grid.stretch, 1.0, MAX_STRETCH),
                ("energy_j", &grid.energy_j, energy_lower_j, energy_upper_j),
            ];
            for (lane, values, lo, hi) in lanes {
                if values.len() != GRID_POINTS {
                    return err(format!(
                        "bucket {b} {lane}: need {GRID_POINTS} grid points, got {}",
                        values.len()
                    ));
                }
                if values.iter().any(|v| !v.is_finite() || *v < lo || *v > hi) {
                    return err(format!(
                        "bucket {b} {lane}: values must lie in [{lo}, {hi}]"
                    ));
                }
                if values.windows(2).any(|w| w[0] > w[1]) {
                    return err(format!("bucket {b} {lane}: quantiles must be non-decreasing"));
                }
            }
        }
        Ok(FittedTable {
            model: model.into(),
            batch,
            lower_cycles,
            upper_cycles,
            energy_lower_j,
            energy_upper_j,
            bucket_edges,
            buckets,
            probes: AtomicU64::new(0),
            lookups: AtomicU64::new(0),
        })
    }

    /// Fits a table from engine batch samples: each sample is bucketed
    /// by its queue depth at service start, each bucket's occupancy /
    /// stretch / energy quantiles are taken independently, and
    /// everything is clamped into the envelope. Energy is priced per
    /// sample by interpolating the static energy envelope at the
    /// sample's position inside the cycle envelope (a modelling choice:
    /// the envelope ties energy to work done, and a batch's occupancy
    /// *is* its work). Buckets with no samples serve conservatively at
    /// the envelope ceiling.
    ///
    /// # Errors
    ///
    /// The [`FittedTable::new`] validation errors (degenerate
    /// envelopes, non-increasing edges).
    #[allow(clippy::too_many_arguments)]
    pub fn fit(
        model: impl Into<String>,
        batch: usize,
        lower_cycles: u64,
        upper_cycles: u64,
        energy_lower_j: f64,
        energy_upper_j: f64,
        bucket_edges: Vec<usize>,
        samples: &[BatchSample],
    ) -> Result<FittedTable, EquinoxError> {
        let (c_lo, c_hi) = (lower_cycles as f64, upper_cycles as f64);
        let price = |occ: f64| -> f64 {
            let span = c_hi - c_lo;
            let frac = if span > 0.0 { (occ - c_lo) / span } else { 0.0 };
            energy_lower_j + (energy_upper_j - energy_lower_j) * frac
        };
        let n_buckets = bucket_edges.len() + 1;
        let mut binned: Vec<Vec<&BatchSample>> = vec![Vec::new(); n_buckets];
        for s in samples {
            // The same partition-point rule `bucket_index` uses, without
            // the instrumentation (no table exists yet).
            let b = bucket_edges.partition_point(|&e| e <= s.queue_depth);
            binned[b].push(s);
        }
        let buckets = binned
            .into_iter()
            .map(|bin| {
                if bin.is_empty() {
                    return QuantileGrid::ceiling(upper_cycles, energy_upper_j);
                }
                let mut occ: Vec<f64> =
                    bin.iter().map(|s| s.occupancy_cycles.clamp(c_lo, c_hi)).collect();
                let mut stretch: Vec<f64> =
                    bin.iter().map(|s| s.stretch().clamp(1.0, MAX_STRETCH)).collect();
                let mut energy: Vec<f64> = occ
                    .iter()
                    .map(|&o| price(o).clamp(energy_lower_j, energy_upper_j))
                    .collect();
                occ.sort_by(f64::total_cmp);
                stretch.sort_by(f64::total_cmp);
                energy.sort_by(f64::total_cmp);
                let grid = |sorted: &[f64]| -> Vec<f64> {
                    (0..GRID_POINTS)
                        .map(|i| sorted_quantile(sorted, i as f64 / (GRID_POINTS - 1) as f64))
                        .collect()
                };
                QuantileGrid {
                    count: bin.len(),
                    occupancy_cycles: grid(&occ),
                    stretch: grid(&stretch),
                    energy_j: grid(&energy),
                }
            })
            .collect();
        FittedTable::new(
            model,
            batch,
            lower_cycles,
            upper_cycles,
            energy_lower_j,
            energy_upper_j,
            bucket_edges,
            buckets,
        )
    }

    /// The contention bucket for a queue depth: a hand-rolled
    /// partition-point binary search over `bucket_edges`, instrumented
    /// so [`FittedTable::probe_count`] can prove O(log n) scaling.
    fn bucket_index(&self, queue_depth: usize) -> usize {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let (mut lo, mut hi) = (0usize, self.bucket_edges.len());
        while lo < hi {
            self.probes.fetch_add(1, Ordering::Relaxed);
            let mid = lo + (hi - lo) / 2;
            if self.bucket_edges[mid] <= queue_depth {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Draws one batch: selects the contention bucket for
    /// `queue_depth`, then inverse-CDF-interpolates all three lanes
    /// comonotonically at the uniform `u ∈ [0, 1]`. Every returned
    /// value is defensively clamped into the envelope, so the draw is
    /// inside `[lower, upper]` whatever the table contents.
    pub fn sample(&self, queue_depth: usize, u: f64) -> FittedDraw {
        let grid = &self.buckets[self.bucket_index(queue_depth)];
        let u = if u.is_finite() { u.clamp(0.0, 1.0) } else { 0.0 };
        let pos = u * (GRID_POINTS - 1) as f64;
        let k = (pos.floor() as usize).min(GRID_POINTS - 2);
        let frac = pos - k as f64;
        let lerp = |v: &[f64]| v[k] + (v[k + 1] - v[k]) * frac;
        let occupancy_cycles =
            lerp(&grid.occupancy_cycles).clamp(self.lower_cycles as f64, self.upper_cycles as f64);
        let stretch = lerp(&grid.stretch).clamp(1.0, MAX_STRETCH);
        let energy_j = lerp(&grid.energy_j).clamp(self.energy_lower_j, self.energy_upper_j);
        FittedDraw {
            occupancy_cycles,
            duration_cycles: occupancy_cycles * stretch,
            energy_j,
        }
    }

    /// The bucket boundaries (sorted, strictly increasing).
    pub fn bucket_edges(&self) -> &[usize] {
        &self.bucket_edges
    }

    /// The per-bucket quantile grids (`bucket_edges().len() + 1` of
    /// them).
    pub fn buckets(&self) -> &[QuantileGrid] {
        &self.buckets
    }

    /// Total [`FittedTable::sample`]/lookup calls served so far.
    pub fn lookup_count(&self) -> u64 {
        self.lookups.load(Ordering::Relaxed)
    }

    /// Total binary-search halving steps across all lookups. Bounded
    /// by `lookup_count × (⌈log₂(edges + 1)⌉)` — the scaling test's
    /// contract.
    pub fn probe_count(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use equinox_arith::check;
    use equinox_arith::rng::SplitMix64;

    /// A small handmade table: envelope [1000, 2000] cycles,
    /// [1.0, 3.0] J, edges at depths 8 and 32.
    fn toy_table() -> FittedTable {
        let grid = |lo: f64, hi: f64| -> Vec<f64> {
            (0..GRID_POINTS)
                .map(|i| lo + (hi - lo) * i as f64 / (GRID_POINTS - 1) as f64)
                .collect()
        };
        let bucket = |c_lo: f64, c_hi: f64, s_hi: f64| QuantileGrid {
            count: 100,
            occupancy_cycles: grid(c_lo, c_hi),
            stretch: grid(1.0, s_hi),
            energy_j: grid(1.0, 3.0),
        };
        FittedTable::new(
            "toy",
            16,
            1000,
            2000,
            1.0,
            3.0,
            vec![8, 32],
            vec![
                bucket(1000.0, 1200.0, 1.1),
                bucket(1100.0, 1600.0, 1.5),
                bucket(1400.0, 2000.0, 2.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_rejects_bad_tables() {
        let t = toy_table();
        let cases: Vec<(&str, Result<FittedTable, EquinoxError>)> = vec![
            (
                "inverted cycle envelope",
                FittedTable::new("m", 16, 2000, 1000, 1.0, 3.0, vec![], vec![
                    QuantileGrid::ceiling(1000, 3.0),
                ]),
            ),
            (
                "edges not strictly increasing",
                FittedTable::new("m", 16, 1000, 2000, 1.0, 3.0, vec![8, 8], vec![
                    QuantileGrid::ceiling(2000, 3.0),
                    QuantileGrid::ceiling(2000, 3.0),
                    QuantileGrid::ceiling(2000, 3.0),
                ]),
            ),
            (
                "bucket count mismatch",
                FittedTable::new("m", 16, 1000, 2000, 1.0, 3.0, vec![8], vec![
                    QuantileGrid::ceiling(2000, 3.0),
                ]),
            ),
            (
                "occupancy outside envelope",
                FittedTable::new("m", 16, 1000, 2000, 1.0, 3.0, vec![], vec![QuantileGrid {
                    count: 1,
                    occupancy_cycles: vec![900.0; GRID_POINTS],
                    stretch: vec![1.0; GRID_POINTS],
                    energy_j: vec![1.0; GRID_POINTS],
                }]),
            ),
            (
                "decreasing quantiles",
                FittedTable::new("m", 16, 1000, 2000, 1.0, 3.0, vec![], vec![QuantileGrid {
                    count: 1,
                    occupancy_cycles: {
                        let mut v = vec![1500.0; GRID_POINTS];
                        v[GRID_POINTS - 1] = 1100.0;
                        v
                    },
                    stretch: vec![1.0; GRID_POINTS],
                    energy_j: vec![1.0; GRID_POINTS],
                }]),
            ),
        ];
        for (what, r) in cases {
            assert!(
                matches!(r, Err(EquinoxError::InvalidArgument { .. })),
                "expected rejection: {what}"
            );
        }
        // And the toy table itself is valid.
        assert_eq!(t.bucket_edges(), &[8, 32]);
    }

    #[test]
    fn bucket_index_matches_a_linear_scan() {
        let t = toy_table();
        for depth in 0..64 {
            let linear = t.bucket_edges.iter().filter(|&&e| e <= depth).count();
            assert_eq!(t.bucket_index(depth), linear, "depth {depth}");
        }
    }

    #[test]
    fn lookup_probes_scale_logarithmically() {
        // Satellite: a 256-edge table must answer every lookup in
        // ≤ ⌈log₂(257)⌉ = 9 halving steps, never a linear scan.
        let edges: Vec<usize> = (1..=256).map(|i| i * 4).collect();
        let buckets: Vec<QuantileGrid> =
            (0..257).map(|_| QuantileGrid::ceiling(2000, 3.0)).collect();
        let t = FittedTable::new("scaling", 16, 1000, 2000, 1.0, 3.0, edges, buckets).unwrap();
        let mut rng = SplitMix64::seed_from_u64(9);
        let lookups = 10_000usize;
        for _ in 0..lookups {
            t.sample(rng.usize_in(0, 2048), rng.next_f64());
        }
        assert_eq!(t.lookup_count(), lookups as u64);
        let max_probes_per_lookup = (257usize.next_power_of_two()).trailing_zeros() as u64;
        assert!(
            t.probe_count() <= t.lookup_count() * max_probes_per_lookup,
            "{} probes for {} lookups exceeds the O(log n) bound of {} per lookup",
            t.probe_count(),
            t.lookup_count(),
            max_probes_per_lookup
        );
        // And it genuinely binary-searches: strictly fewer probes than
        // a linear scan of 256 edges would cost.
        assert!(t.probe_count() < t.lookup_count() * 32);
    }

    #[test]
    fn fit_buckets_samples_and_interpolates_inside_the_envelope() {
        let mk = |depth: usize, occ: f64, stretch: f64| BatchSample {
            queue_depth: depth,
            real: 16,
            start_cycle: 0.0,
            end_cycle: occ * stretch,
            occupancy_cycles: occ,
        };
        // Low-depth samples fast, high-depth samples slow; one sample
        // deliberately outside the envelope on each side (clamped).
        let samples: Vec<BatchSample> = (0..200)
            .map(|i| {
                if i % 2 == 0 {
                    mk(2, 1050.0 + i as f64, 1.0)
                } else {
                    mk(40, 1500.0 + i as f64, 1.4)
                }
            })
            .chain([mk(2, 500.0, 0.5), mk(40, 9999.0, 9.0)])
            .collect();
        let t = FittedTable::fit("m", 16, 1000, 2000, 1.0, 3.0, vec![8, 32], &samples).unwrap();
        assert_eq!(t.buckets()[0].count, 101);
        assert_eq!(t.buckets()[1].count, 0, "no samples between depths 8 and 32");
        assert_eq!(t.buckets()[2].count, 101);
        // The unobserved middle bucket serves at the ceiling.
        let mid = t.sample(16, 0.5);
        assert_eq!(mid.occupancy_cycles, 2000.0);
        assert_eq!(mid.duration_cycles, 2000.0 * MAX_STRETCH);
        // Fitted buckets reflect their samples: low depth is faster.
        let fast = t.sample(2, 0.5);
        let slow = t.sample(40, 0.5);
        assert!(fast.occupancy_cycles < slow.occupancy_cycles);
        assert!(fast.energy_j < slow.energy_j, "energy priced by occupancy");
        assert!(slow.duration_cycles / slow.occupancy_cycles > 1.3);
        // Draws are monotone in u (comonotone lanes).
        let lo = t.sample(2, 0.0);
        let hi = t.sample(2, 1.0);
        assert!(lo.occupancy_cycles <= fast.occupancy_cycles);
        assert!(fast.occupancy_cycles <= hi.occupancy_cycles);
    }

    #[test]
    fn every_draw_lies_inside_the_envelope_for_random_tables() {
        // Property: whatever the fitting data (including samples far
        // outside the envelope), geometry, and draw inputs, a fitted
        // sample never escapes the static envelope.
        check::for_each_case(64, 0xf17ed, |g| {
            let lower = g.usize_in(1, 10_000) as u64;
            let upper = lower + g.usize_in(0, 10_000) as u64;
            let e_lo = g.f64_in(0.0, 5.0);
            let e_hi = e_lo + g.f64_in(0.0, 5.0);
            let n_edges = g.usize_in(0, 6);
            let mut edges = Vec::new();
            let mut next = 1usize;
            for _ in 0..n_edges {
                edges.push(next);
                next += g.usize_in(1, 64);
            }
            let samples: Vec<BatchSample> = (0..g.usize_in(0, 200))
                .map(|_| {
                    let occ = g.f64_in(0.0, 3.0 * upper as f64);
                    let stretch = g.f64_in(0.1, 8.0);
                    BatchSample {
                        queue_depth: g.usize_in(0, 256),
                        real: 1,
                        start_cycle: 0.0,
                        end_cycle: occ * stretch,
                        occupancy_cycles: occ,
                    }
                })
                .collect();
            let t = FittedTable::fit("prop", 8, lower, upper, e_lo, e_hi, edges, &samples)
                .expect("fit clamps into any valid envelope");
            for _ in 0..32 {
                let d = t.sample(g.usize_in(0, 512), g.f64_in(-0.5, 1.5));
                assert!(d.occupancy_cycles >= lower as f64);
                assert!(d.occupancy_cycles <= upper as f64);
                assert!(d.duration_cycles >= d.occupancy_cycles);
                assert!(d.duration_cycles <= MAX_STRETCH * d.occupancy_cycles);
                assert!(d.energy_j >= e_lo && d.energy_j <= e_hi);
            }
        });
    }

    #[test]
    fn equality_ignores_instrumentation_counters() {
        let a = toy_table();
        let b = toy_table();
        a.sample(0, 0.5);
        assert_ne!(a.lookup_count(), b.lookup_count());
        assert_eq!(a, b);
    }
}
