//! Per-device specification of a fleet member.

use crate::fitted::FittedTable;
use equinox_isa::lower::InferenceTiming;
use equinox_isa::training::TrainingProfile;
use equinox_isa::EquinoxError;
use equinox_sim::{AcceleratorConfig, FaultScenario, Simulation};
use std::sync::Arc;

/// How a fleet member evaluates its share of the traffic.
///
/// Large fleet sweeps pay one full discrete-event simulation per
/// device per cell; when only coarse capacity questions are asked
/// (sizing, routing-policy screening), a device can instead be
/// evaluated by a fast analytic surrogate driven by the static cycle
/// bounds of the served program (`equinox_check::bounds`). The
/// [`Fidelity::StaticBounds`] surrogate mirrors the dispatcher's
/// batch-formation rules but charges every batch the *upper* service
/// bound, so its latencies are conservative; harvest is credited only
/// for fully idle cycles, so free-training numbers are conservative
/// too (see [`crate::surrogate`]).
///
/// [`Fidelity::Fitted`] keeps the same walk but draws each batch's
/// service time, contention stretch, and energy from a quantile table
/// fitted offline against the cycle-accurate engine and clamped into
/// the same static envelope (see [`crate::fitted`]) — distributionally
/// faithful where the envelope is merely sound, at the same O(1) cost
/// per request, which is what lets sweeps reach 64–256 devices and
/// 10–100× longer horizons.
#[derive(Debug, Clone, PartialEq)]
pub enum Fidelity {
    /// Full discrete-event simulation (the default).
    CycleAccurate,
    /// Analytic surrogate bounded by the static bounds analysis.
    StaticBounds {
        /// Static lower bound on batch service cycles (kept for the
        /// validity contract `lower ≤ upper`; the surrogate serves at
        /// the upper bound).
        lower_cycles: u64,
        /// Static upper bound on batch service cycles — the service
        /// time the surrogate charges per batch.
        upper_cycles: u64,
    },
    /// Distributional surrogate: batch service drawn from a fitted
    /// quantile table (shared across devices via `Arc`), every draw
    /// clamped inside the static envelope.
    Fitted(Arc<FittedTable>),
}

/// One accelerator in the fleet: its simulator configuration, the
/// compiled timing of the inference workload it serves, an optional
/// co-hosted training service (the device "harvests" free epochs), and
/// an optional device-local fault scenario.
///
/// Fleets may be heterogeneous: members can differ in geometry, clock,
/// scheduler/batching/degradation policies, training co-hosting, and
/// injected faults. The router compares devices in *seconds* of
/// estimated outstanding work, so heterogeneous members are weighed
/// fairly.
#[derive(Debug, Clone)]
pub struct DeviceSpec {
    /// Simulator configuration (name, geometry, clock, policies).
    pub config: AcceleratorConfig,
    /// Compiled timing of the served inference workload.
    pub timing: InferenceTiming,
    /// Co-hosted training service; `None` for an inference-only device.
    pub training: Option<TrainingProfile>,
    /// Device-local fault scenario (baseline = fault-free).
    pub scenario: FaultScenario,
    /// How this device's traffic share is evaluated.
    pub fidelity: Fidelity,
}

impl DeviceSpec {
    /// An inference-only, fault-free, cycle-accurate device.
    pub fn new(config: AcceleratorConfig, timing: InferenceTiming) -> Self {
        DeviceSpec {
            config,
            timing,
            training: None,
            scenario: FaultScenario::baseline(),
            fidelity: Fidelity::CycleAccurate,
        }
    }

    /// Co-hosts a training service on this device.
    #[must_use]
    pub fn with_training(mut self, profile: TrainingProfile) -> Self {
        self.training = Some(profile);
        self
    }

    /// Injects a device-local fault scenario.
    #[must_use]
    pub fn with_scenario(mut self, scenario: FaultScenario) -> Self {
        self.scenario = scenario;
        self
    }

    /// Evaluates this device with the static-bounds surrogate instead
    /// of the discrete-event engine. `lower_cycles`/`upper_cycles` are
    /// the static cycle bounds of the served program (from
    /// `equinox_check::bounds::compute_bounds`); [`crate::Fleet::new`]
    /// validates `0 < lower ≤ upper`.
    #[must_use]
    pub fn with_static_bounds(mut self, lower_cycles: u64, upper_cycles: u64) -> Self {
        self.fidelity = Fidelity::StaticBounds { lower_cycles, upper_cycles };
        self
    }

    /// Evaluates this device with the fitted distributional surrogate.
    /// The table is `Arc`-shared so hundreds of devices serving the
    /// same model reference one fit; [`crate::Fleet::new`] validates
    /// that the table's batch matches the device timing and that the
    /// nominal service time lies inside the table's envelope.
    #[must_use]
    pub fn with_fitted(mut self, table: Arc<FittedTable>) -> Self {
        self.fidelity = Fidelity::Fitted(table);
        self
    }

    /// True if this device co-hosts training (a harvest candidate the
    /// training-aware policy shields).
    pub fn harvests(&self) -> bool {
        self.training.is_some()
    }

    /// Saturation request rate in requests per second: a full batch
    /// every batch-service interval.
    pub fn max_request_rate_per_s(&self) -> f64 {
        self.timing.batch as f64 / self.timing.total_cycles as f64 * self.config.freq_hz
    }

    /// Seconds of service capacity one request consumes at saturation
    /// (the router's unit of outstanding work).
    pub fn work_per_request_s(&self) -> f64 {
        1.0 / self.max_request_rate_per_s()
    }

    /// Batch service time in seconds.
    pub fn service_time_s(&self) -> f64 {
        self.timing.total_cycles as f64 / self.config.freq_hz
    }

    /// Builds the per-device simulation.
    ///
    /// # Errors
    ///
    /// Propagates [`Simulation::new`] validation
    /// ([`EquinoxError::InvalidArgument`] on a degenerate timing).
    pub(crate) fn simulation(&self) -> Result<Simulation, EquinoxError> {
        Simulation::new(self.config.clone(), self.timing, self.training)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::tests::test_device;

    #[test]
    fn rates_are_consistent() {
        let d = test_device("d0", 1e9, false);
        let rate = d.max_request_rate_per_s();
        assert!(rate > 0.0);
        assert!((d.work_per_request_s() * rate - 1.0).abs() < 1e-12);
        // batch requests per service interval.
        assert!(
            (d.service_time_s() * rate - d.timing.batch as f64).abs() < 1e-9,
            "{} vs {}",
            d.service_time_s() * rate,
            d.timing.batch
        );
    }

    #[test]
    fn builders_set_fields() {
        let d = test_device("d0", 1e9, true)
            .with_scenario(FaultScenario::named("stall").with_stall(10, 20));
        assert!(d.harvests());
        assert_eq!(d.scenario.name, "stall");
    }
}
