//! Fleet-level aggregation: merged latency distribution, throughput,
//! the shed/dropped ledger, and free-training epoch accounting.

use crate::autoscale::ScalingSpan;
use crate::sync::SyncReport;
use equinox_isa::training::TrainingProfile;
use equinox_sim::{ClassLedger, LatencyStats, RequestClass, SimReport};

/// Reference training-corpus size defining one "free epoch": the
/// number of samples a device must push through its co-hosted training
/// service for the fleet ledger to credit it with one epoch. 65 536
/// samples is a small-corpus stand-in (≈ the paper's CIFAR-sized
/// convergence studies); harvest comparisons only ever use epoch
/// *ratios*, so the constant cancels there.
pub const EPOCH_SAMPLES: u64 = 65_536;

/// MMU cycles one epoch of [`EPOCH_SAMPLES`] samples costs at the
/// profile's mini-batch size — the denominator of every epoch figure
/// in the fleet ledger.
pub fn epoch_cycles(p: &TrainingProfile) -> f64 {
    let iterations = EPOCH_SAMPLES.div_ceil(p.batch as u64) as f64;
    iterations * p.iteration_mmu_cycles as f64
}

/// Free-training epochs a device harvested, given its simulation
/// report and training profile: MMU cycles actually granted to
/// training, divided by [`epoch_cycles`].
pub fn free_epochs(report: &SimReport, training: Option<&TrainingProfile>) -> f64 {
    let Some(p) = training else { return 0.0 };
    let epoch_cycles = epoch_cycles(p);
    if epoch_cycles <= 0.0 {
        return 0.0;
    }
    report.training_mmu_cycles / epoch_cycles
}

/// One device's share of a fleet run.
#[derive(Debug, Clone)]
pub struct DeviceOutcome {
    /// Device name (from its `AcceleratorConfig`).
    pub name: String,
    /// Requests the router dispatched to this device.
    pub assigned_requests: usize,
    /// Free-training epochs harvested ([`free_epochs`]).
    pub free_epochs: f64,
    /// Inference energy served by this device, joules. Filled only by
    /// the fitted surrogate (its tables carry an energy envelope); 0
    /// under cycle-accurate and static-bounds evaluation.
    pub inference_energy_j: f64,
    /// The full per-device simulation report.
    pub report: SimReport,
}

/// The merged result of a fleet run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Routing policy name ([`crate::RoutingPolicy::name`]).
    pub policy: &'static str,
    /// Admission policy name ([`crate::AdmissionSpec::name`]).
    pub admission: &'static str,
    /// Simulated horizon in reference-clock cycles (device 0's clock).
    pub horizon_cycles: u64,
    /// The reference clock, Hz.
    pub freq_hz: f64,
    /// Arrivals offered to the front end (before admission control).
    pub offered_requests: usize,
    /// Requests the admission policy rejected at the fleet edge (not
    /// counted in [`FleetReport::total_violations`], which stays the
    /// device-side SLO ledger; the per-class ledgers account for them).
    pub admission_shed_requests: usize,
    /// Per-class QoS ledgers in [`RequestClass::ALL`] order (paid,
    /// free): offered/shed counts are exact at the fleet edge;
    /// completions are attributed where devices report per-request
    /// outcomes (see [`ClassLedger`]).
    pub class_ledgers: Vec<ClassLedger>,
    /// Autoscaling transitions, in time order (empty without an
    /// autoscale policy).
    pub scaling_spans: Vec<ScalingSpan>,
    /// Gradient-synchronization accounting; present only when the
    /// fleet carries an interconnect
    /// ([`crate::Fleet::with_interconnect`]).
    pub sync: Option<SyncReport>,
    /// Per-device outcomes, in device-index order.
    pub devices: Vec<DeviceOutcome>,
    /// Fleet-wide latency distribution: every device's measured
    /// samples merged into one tail.
    pub latency: LatencyStats,
}

impl FleetReport {
    /// Requests that passed admission control.
    pub fn admitted_requests(&self) -> usize {
        self.offered_requests - self.admission_shed_requests
    }

    /// The QoS ledger of one priority tier.
    pub fn class_ledger(&self, class: RequestClass) -> &ClassLedger {
        &self.class_ledgers[class.index()]
    }

    /// Requests completed across the fleet.
    pub fn completed_requests(&self) -> u64 {
        self.devices.iter().map(|d| d.report.completed_requests).sum()
    }

    /// Aggregate inference throughput, Ops/s.
    pub fn inference_throughput_ops(&self) -> f64 {
        self.devices.iter().map(|d| d.report.inference_throughput_ops).sum()
    }

    /// Aggregate inference throughput, TOp/s.
    pub fn inference_tops(&self) -> f64 {
        self.inference_throughput_ops() / 1e12
    }

    /// Aggregate harvested training throughput, TOp/s.
    pub fn training_tops(&self) -> f64 {
        self.devices.iter().map(|d| d.report.training_tops()).sum()
    }

    /// Fleet-wide free-training epochs harvested.
    pub fn free_epochs(&self) -> f64 {
        self.devices.iter().map(|d| d.free_epochs).sum()
    }

    /// Fleet-wide free epochs once gradient synchronization is paid
    /// for: the interconnect's synced figure when one is attached, the
    /// raw harvest otherwise (no interconnect — replicas are free and
    /// independent, the pre-interconnect convention).
    pub fn synced_free_epochs(&self) -> f64 {
        self.sync
            .as_ref()
            .map_or_else(|| self.free_epochs(), |s| s.synced_free_epochs)
    }

    /// Deadline misses attributable to interconnect congestion, summed
    /// over the class ledgers (0 without an interconnect).
    pub fn sync_deadline_misses(&self) -> usize {
        self.class_ledgers.iter().map(|l| l.sync_deadline_misses).sum()
    }

    /// Fleet-wide inference energy, joules (nonzero only where fitted
    /// devices served traffic — see
    /// [`DeviceOutcome::inference_energy_j`]).
    pub fn inference_energy_j(&self) -> f64 {
        self.devices.iter().map(|d| d.inference_energy_j).sum()
    }

    /// Fleet-wide free-training epochs displaced by attributed traffic,
    /// per class (the per-tier harvest ledger; nonzero only where
    /// surrogate devices co-host training).
    pub fn displaced_epochs(&self, class: RequestClass) -> f64 {
        self.class_ledger(class).displaced_epochs
    }

    /// Requests shed by device-local load shedding across the fleet
    /// (fleet-edge admission sheds are in
    /// [`FleetReport::admission_shed_requests`]).
    pub fn shed_requests(&self) -> u64 {
        self.devices.iter().map(|d| d.report.shed_requests).sum()
    }

    /// Requests dropped with corrupted batches across the fleet.
    pub fn dropped_requests(&self) -> usize {
        self.slo_ledger(|s| s.dropped_requests)
    }

    /// Deadline misses across the fleet.
    pub fn deadline_misses(&self) -> usize {
        self.slo_ledger(|s| s.deadline_misses)
    }

    /// SLO-measured requests across the fleet.
    pub fn measured_requests(&self) -> usize {
        self.slo_ledger(|s| s.measured_requests)
    }

    /// Total SLO violations (misses + shed + dropped) across the fleet.
    pub fn total_violations(&self) -> usize {
        self.slo_ledger(equinox_sim::SloReport::total_violations)
    }

    /// Violations over measured requests, fleet-wide.
    pub fn violation_rate(&self) -> f64 {
        let measured = self.measured_requests();
        if measured == 0 {
            0.0
        } else {
            self.total_violations() as f64 / measured as f64
        }
    }

    /// True if no device recorded any SLO violation.
    pub fn slo_clean(&self) -> bool {
        self.total_violations() == 0
    }

    /// Fleet-wide 99th-percentile latency, ms.
    pub fn p99_ms(&self) -> f64 {
        self.latency.p99() * 1e3
    }

    /// Fleet-wide 99.9th-percentile latency, ms.
    pub fn p999_ms(&self) -> f64 {
        self.latency.p999() * 1e3
    }

    fn slo_ledger(&self, field: impl Fn(&equinox_sim::SloReport) -> usize) -> usize {
        self.devices
            .iter()
            .filter_map(|d| d.report.slo.as_ref())
            .map(field)
            .sum()
    }
}

impl std::fmt::Display for FleetReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Fleet[{} devices, {}]: {} offered, {} completed, {:.1} TOp/s inf, \
             {:.1} TOp/s train, {:.2} free epochs, p99 {:.3} ms, p999 {:.3} ms, \
             {} violation(s)",
            self.devices.len(),
            self.policy,
            self.offered_requests,
            self.completed_requests(),
            self.inference_tops(),
            self.training_tops(),
            self.free_epochs(),
            self.p99_ms(),
            self.p999_ms(),
            self.total_violations(),
        )?;
        for (i, d) in self.devices.iter().enumerate() {
            writeln!(
                f,
                "  [{i}] {:<14} {:>7} req  {:>6.1} TOp/s inf  {:>6.1} TOp/s train  \
                 {:>6.2} epochs",
                d.name,
                d.assigned_requests,
                d.report.inference_tops(),
                d.report.training_tops(),
                d.free_epochs,
            )?;
        }
        if self.admission != "admit_all" || self.admission_shed_requests > 0 {
            writeln!(
                f,
                "  admission {}: {} shed at the edge",
                self.admission, self.admission_shed_requests
            )?;
        }
        for l in &self.class_ledgers {
            if l.class == RequestClass::Free && l.offered_requests == 0 {
                continue;
            }
            if self.admission == "admit_all" && self.class_ledgers[1].offered_requests == 0 {
                // Single-tier admit-all runs: the ledger restates the
                // headline numbers, skip it.
                continue;
            }
            write!(
                f,
                "  {:<4} tier: {} offered, {} shed, {} completed, {} missed, \
                 p999 {:.3} ms",
                l.class.name(),
                l.offered_requests,
                l.shed_requests,
                l.completed_requests,
                l.deadline_misses,
                l.p999_s() * 1e3,
            )?;
            if l.displaced_epochs > 0.0 {
                write!(f, ", displaced {:.2} epochs", l.displaced_epochs)?;
            }
            writeln!(f)?;
        }
        if let Some(s) = &self.sync {
            writeln!(f, "  {s}")?;
        }
        if !self.scaling_spans.is_empty() {
            let joins = self
                .scaling_spans
                .iter()
                .filter(|s| s.kind == crate::autoscale::ScalingKind::Join)
                .count();
            writeln!(
                f,
                "  autoscale: {} join(s), {} drain(s)",
                joins,
                self.scaling_spans.len() - joins
            )?;
        }
        Ok(())
    }
}
