//! The static-bounds surrogate: an analytic device evaluator.
//!
//! A [`Fidelity::StaticBounds`](crate::Fidelity::StaticBounds) device
//! skips the discrete-event engine and answers from a closed-form walk
//! over its arrival stream. The walk mirrors the dispatcher's
//! batch-formation rules exactly — full batches issue at their last
//! arrival, adaptive batching issues the partial batch when the oldest
//! waiting request has aged `threshold × nominal service`, static
//! batching never issues a partial — but charges every batch the
//! *upper* static service bound and serves batches back to back on one
//! MMU. The result is deliberately one-sided:
//!
//! - **Latency is conservative.** Real service never exceeds the upper
//!   bound (that is the bounds pass's soundness claim, calibrated by
//!   the `bounds` regen gate), and a single serial server with no
//!   overlap is the slowest legal schedule, so surrogate latencies
//!   upper-bound the engine's.
//! - **Harvest is conservative.** Training is credited only for cycles
//!   the MMU is fully idle, capped by what DRAM staging can feed —
//!   never the co-run share the engine's priority/fair schedulers
//!   award while inference is in flight.
//!
//! Admission-control load shedding (`DegradationPolicy::shed_above`)
//! *is* modelled, with the engine's exact rule: an arrival is shed when
//! the queue of forming plus formed-but-not-yet-in-service requests is
//! at or beyond the threshold, and shed counts land in the same
//! `SimReport`/`SloReport` fields the engine fills — never a hardcoded
//! zero. The walk also records a `RequestOutcome` per arrival
//! (completed with its latency, shed, or stranded at the horizon),
//! which is what lets the fleet layer attribute per-class SLO ledgers
//! without re-deriving request fates from sorted aggregates.
//!
//! The **fitted** tier ([`crate::Fidelity::Fitted`]) reuses the same
//! walk but swaps the per-batch service model: instead of the fixed
//! upper bound, each batch's occupancy, contention stretch, and energy
//! are drawn from a [`FittedTable`] quantile grid selected by the
//! queue depth at formation, on a device-local seeded stream — so the
//! latencies are distributionally faithful (inside the same envelope)
//! rather than one-sided, and harvest additionally credits the co-run
//! share training receives while a stretched batch is in flight.
//!
//! Faults, software scheduling, and the remaining degradation knobs
//! (training preemption, batch shrinking, retries) are *not* modelled;
//! [`crate::Fleet::new`] rejects surrogate devices that request them.

use crate::device::DeviceSpec;
use crate::fitted::FittedTable;
use equinox_arith::rng::SplitMix64;
use equinox_sim::{
    BatchingPolicy, CostModel, CycleBreakdown, LatencyStats, SchedulerPolicy, SimReport,
    SloReport, SloSpec, WARMUP_FRACTION,
};
use std::collections::VecDeque;

/// The fate of one request under the surrogate walk, in arrival order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum RequestOutcome {
    /// Served to completion inside the horizon. `measured` is the
    /// engine's warmup rule: the arrival fell past the warmup window,
    /// so the latency sample counts toward the report.
    Completed {
        latency_s: f64,
        measured: bool,
        /// This request's share of its batch's MMU occupancy cycles —
        /// the currency of harvest displacement attribution.
        busy_cycles: f64,
    },
    /// Turned away by the device's `shed_above` admission control.
    Shed { measured: bool },
    /// Still forming, queued, or in flight at the horizon. `missed` is
    /// the engine's stranded rule: past warmup with the deadline
    /// already expired, so it counts as a deadline miss.
    Stranded { missed: bool },
}

/// A surrogate evaluation: the engine-shaped report plus the
/// per-request outcome trace backing it.
pub(crate) struct SurrogateRun {
    pub report: SimReport,
    /// One outcome per input arrival, in input order.
    pub outcomes: Vec<RequestOutcome>,
    /// Inference energy of the completed batches, joules (0 under the
    /// static-bounds model, which has no energy envelope attached).
    pub energy_j: f64,
}

/// How the walk prices one batch's service.
enum ServiceModel<'t> {
    /// Every batch costs exactly this many cycles of occupied,
    /// unstretched service (the static upper bound).
    Fixed(f64),
    /// Occupancy / stretch / energy drawn per batch from a fitted
    /// quantile table; `harvesting` enables the contention stretch
    /// (an inference-only device has nothing co-running to stretch
    /// against, so it serves at occupancy).
    Fitted { table: &'t FittedTable, rng: SplitMix64, harvesting: bool },
}

/// The incremental walk state: a serial server (priced by the
/// [`ServiceModel`]) behind the dispatcher's batch-formation front end.
struct Walk<'a> {
    arrivals: &'a [u64],
    n: usize,
    model: ServiceModel<'a>,
    horizon: f64,
    warmup: f64,
    freq: f64,
    deadline_s: Option<f64>,
    useful: f64,
    mmu_busy: f64,
    stall: f64,
    nominal: f64,
    /// Indices of requests still forming a batch.
    forming: Vec<usize>,
    /// Formed batches not yet in service by the walk's clock:
    /// `(member count, service start)`. Starts are monotone, so a
    /// deque pointer mirrors the engine's formed queue.
    pending: VecDeque<(usize, f64)>,
    /// Forming + pending members — the queue `shed_above` measures.
    queued: usize,
    /// End of the serial server's schedule tail.
    tail_busy: f64,
    outcomes: Vec<RequestOutcome>,
    breakdown: CycleBreakdown,
    latencies: Vec<f64>,
    inference_busy: f64,
    /// Training's co-run MMU share while stretched batches were in
    /// flight: Σ (duration − occupancy) over completed batches. Zero
    /// under the fixed model.
    corun_cycles: f64,
    /// Inference energy of completed batches, joules (fitted model).
    energy_j: f64,
    completed: u64,
    completed_measured: usize,
    deadline_misses: usize,
    batches_issued: u64,
    incomplete_batches: u64,
    peak_queue: usize,
    shed_total: u64,
    shed_measured: usize,
    stranded_count: usize,
    stranded_misses: usize,
}

impl Walk<'_> {
    /// The engine's stranded-miss rule for an arrival still queued at
    /// the horizon.
    fn stranded_missed(&self, a: u64) -> bool {
        let Some(deadline_s) = self.deadline_s else { return false };
        (a as f64) >= self.warmup && (self.horizon - a as f64) / self.freq > deadline_s
    }

    /// Forms one batch at `ready`, prices it through the service model,
    /// schedules it on the serial server, and resolves its members'
    /// fates (the schedule is deterministic, so fate is known at
    /// formation). Members stay in `queued` via `pending` until their
    /// service start passes the walk's clock.
    fn form_batch(&mut self, members: Vec<usize>, ready: f64) {
        self.batches_issued += 1;
        let real = members.len();
        // The fitted table's contention proxy: the backlog behind this
        // batch (the engine's sampler measures the queue after the
        // serviced batch leaves it).
        let depth = self.queued.saturating_sub(real);
        let (occupancy, duration, energy) = match &mut self.model {
            ServiceModel::Fixed(s) => (*s, *s, 0.0),
            ServiceModel::Fitted { table, rng, harvesting } => {
                let draw = table.sample(depth, rng.next_f64());
                let duration =
                    if *harvesting { draw.duration_cycles } else { draw.occupancy_cycles };
                (draw.occupancy_cycles, duration, draw.energy_j)
            }
        };
        let start = self.tail_busy.max(ready);
        let end = start + duration;
        self.tail_busy = end;
        self.pending.push_back((real, start));
        if end > self.horizon {
            // The server is serial and starts are monotone: this batch
            // and every later one miss the horizon.
            for &i in &members {
                let missed = self.stranded_missed(self.arrivals[i]);
                self.outcomes[i] = RequestOutcome::Stranded { missed };
                self.stranded_count += 1;
                if missed {
                    self.stranded_misses += 1;
                }
            }
            return;
        }
        self.inference_busy += duration;
        self.corun_cycles += duration - occupancy;
        self.energy_j += energy;
        if real < self.n {
            self.incomplete_batches += 1;
        }
        let busy_cycles = occupancy / real as f64;
        for &i in &members {
            self.completed += 1;
            let a = self.arrivals[i] as f64;
            let latency_s = (end - a) / self.freq;
            let measured = a >= self.warmup;
            self.outcomes[i] = RequestOutcome::Completed { latency_s, measured, busy_cycles };
            if measured {
                self.latencies.push(latency_s);
                self.completed_measured += 1;
                if self.deadline_s.is_some_and(|d| latency_s > d) {
                    self.deadline_misses += 1;
                }
            }
        }
        // The engine's per-batch Figure 8 accounting, plus the model's
        // pessimism cycles (occupancy above nominal) as wasted time.
        self.breakdown.working += self.useful * real as f64 / self.n as f64;
        self.breakdown.dummy += self.useful * (self.n - real) as f64 / self.n as f64;
        self.breakdown.other +=
            (self.mmu_busy - self.useful) + self.stall + (occupancy - self.nominal).max(0.0);
    }
}

/// Evaluates `spec`'s share of the traffic with the conservative
/// static-bounds model, keeping the per-request outcome trace (see the
/// module docs for the model and its conservatisms). `arrivals` are
/// sorted device-clock cycles; the embedded report has the same shape
/// the engine produces, so fleet merging is fidelity-agnostic.
pub(crate) fn run_static_bounds_traced(
    spec: &DeviceSpec,
    upper_cycles: u64,
    arrivals: &[u64],
    horizon: u64,
    slo: Option<SloSpec>,
) -> SurrogateRun {
    run_surrogate_traced(spec, ServiceModel::Fixed(upper_cycles as f64), arrivals, horizon, slo)
}

/// Evaluates `spec`'s share of the traffic with the fitted
/// distributional model: same walk, but per-batch service drawn from
/// `table` on a device-local stream seeded with `seed` (the fleet
/// passes stream `2 + device_index`, see the crate docs), so the
/// result is a pure function of the inputs at any thread count.
pub(crate) fn run_fitted_traced(
    spec: &DeviceSpec,
    table: &FittedTable,
    arrivals: &[u64],
    horizon: u64,
    slo: Option<SloSpec>,
    seed: u64,
) -> SurrogateRun {
    let harvesting = spec.training.is_some()
        && !matches!(spec.config.scheduler, SchedulerPolicy::InferenceOnly);
    let model =
        ServiceModel::Fitted { table, rng: SplitMix64::seed_from_u64(seed), harvesting };
    run_surrogate_traced(spec, model, arrivals, horizon, slo)
}

/// The DRAM-capped fraction of an idle MMU cycle the device's training
/// service can actually use: staging supply over the profile's
/// bytes-per-executed-cycle appetite, capped at 1. Zero without a
/// co-hosted profile.
pub(crate) fn idle_harvest_rate(spec: &DeviceSpec) -> f64 {
    let Some(profile) = spec.training.as_ref() else { return 0.0 };
    let bytes_per_exec =
        profile.iteration_dram_bytes as f64 / profile.iteration_mmu_cycles as f64;
    let supply = CostModel::from_config(&spec.config).dram_bytes_per_cycle;
    if bytes_per_exec > 0.0 {
        (supply / bytes_per_exec).min(1.0)
    } else {
        1.0
    }
}

/// The shared surrogate walk behind both fidelity tiers.
fn run_surrogate_traced(
    spec: &DeviceSpec,
    model: ServiceModel<'_>,
    arrivals: &[u64],
    horizon: u64,
    slo: Option<SloSpec>,
) -> SurrogateRun {
    let freq = spec.config.freq_hz;
    let timing = &spec.timing;
    let n = timing.batch.max(1);
    // The dispatcher's formation deadline is keyed to the *nominal*
    // service time (it is a policy of the real hardware, not of the
    // bound), exactly as in the engine.
    let threshold = match spec.config.batching {
        BatchingPolicy::Static => None,
        BatchingPolicy::Adaptive { threshold_x } => {
            Some(threshold_x * timing.total_cycles as f64)
        }
    };
    let shed_above = spec.config.degradation.shed_above;
    let mut walk = Walk {
        arrivals,
        n,
        model,
        horizon: horizon as f64,
        warmup: horizon as f64 * WARMUP_FRACTION,
        freq,
        deadline_s: slo.map(|s| s.deadline_s),
        useful: timing.mmu_busy_cycles as f64 * timing.mmu_utilization,
        mmu_busy: timing.mmu_busy_cycles as f64,
        stall: timing.stall_cycles as f64,
        nominal: timing.total_cycles as f64,
        forming: Vec::new(),
        pending: VecDeque::new(),
        queued: 0,
        tail_busy: 0.0,
        outcomes: vec![RequestOutcome::Stranded { missed: false }; arrivals.len()],
        breakdown: CycleBreakdown::default(),
        latencies: Vec::new(),
        inference_busy: 0.0,
        corun_cycles: 0.0,
        energy_j: 0.0,
        completed: 0,
        completed_measured: 0,
        deadline_misses: 0,
        batches_issued: 0,
        incomplete_batches: 0,
        peak_queue: 0,
        shed_total: 0,
        shed_measured: 0,
        stranded_count: 0,
        stranded_misses: 0,
    };

    for (i, &t) in arrivals.iter().enumerate() {
        let ta = t as f64;
        // Adaptive formation deadline that expired before this arrival
        // (the engine fires it as its own timer event).
        if let (Some(thr), Some(&first)) = (threshold, walk.forming.first()) {
            let deadline = arrivals[first] as f64 + thr;
            if deadline <= ta {
                let members = std::mem::take(&mut walk.forming);
                walk.form_batch(members, deadline);
            }
        }
        // Batches whose service started strictly before this arrival
        // have left the dispatcher's queue (the engine dispatches in
        // `settle` after processing same-instant arrivals, so a batch
        // starting exactly now still counts as queued).
        while let Some(&(m, start)) = walk.pending.front() {
            if start < ta {
                walk.queued -= m;
                walk.pending.pop_front();
            } else {
                break;
            }
        }
        // Admission control: the engine's shed rule, verbatim.
        if let Some(k) = shed_above {
            if walk.queued >= k {
                let measured = ta >= walk.warmup;
                walk.outcomes[i] = RequestOutcome::Shed { measured };
                walk.shed_total += 1;
                if measured {
                    walk.shed_measured += 1;
                }
                continue;
            }
        }
        walk.forming.push(i);
        walk.queued += 1;
        walk.peak_queue = walk.peak_queue.max(walk.queued);
        if walk.forming.len() >= n {
            let members = std::mem::take(&mut walk.forming);
            walk.form_batch(members, ta);
        }
    }
    // Trailing adaptive partial whose deadline still fits the horizon.
    if let (Some(thr), Some(&first)) = (threshold, walk.forming.first()) {
        let deadline = arrivals[first] as f64 + thr;
        if deadline < horizon as f64 {
            let members = std::mem::take(&mut walk.forming);
            walk.form_batch(members, deadline);
        }
    }
    // Whatever is still forming at the horizon is stranded.
    for &i in &walk.forming {
        let missed = walk.stranded_missed(arrivals[i]);
        walk.outcomes[i] = RequestOutcome::Stranded { missed };
        walk.stranded_count += 1;
        if missed {
            walk.stranded_misses += 1;
        }
    }
    let final_queue_depth = walk.stranded_count;
    let peak_queue = walk.peak_queue.max(final_queue_depth);

    // Harvest: idle cycles DRAM-capped (conservative: the fixed model
    // has no co-run share), plus — under the fitted model — the co-run
    // share training received while stretched batches were in flight.
    let admits_training = spec.training.is_some()
        && !matches!(spec.config.scheduler, SchedulerPolicy::InferenceOnly);
    let idle = (horizon as f64 - walk.inference_busy).max(0.0);
    let (training_cycles, idle_harvest, training_macs) = if admits_training {
        let profile = spec.training.as_ref().expect("admits_training checked");
        let idle_harvest = idle * idle_harvest_rate(spec);
        let cycles = walk.corun_cycles + idle_harvest;
        let macs_per_cycle =
            profile.iteration_macs as f64 / profile.iteration_mmu_cycles as f64;
        (cycles, idle_harvest, cycles * macs_per_cycle)
    } else {
        (0.0, 0.0, 0.0)
    };
    let mut breakdown = walk.breakdown;
    breakdown.working += training_cycles;
    breakdown.idle = (idle - idle_harvest).max(0.0);

    let elapsed_s = horizon as f64 / freq;
    let measured_s = elapsed_s * (1.0 - WARMUP_FRACTION);
    let latency = LatencyStats::from_samples(walk.latencies);
    let slo_report = slo.map(|spec| SloReport {
        deadline_s: spec.deadline_s,
        measured_requests: walk.completed_measured + walk.shed_measured + walk.stranded_misses,
        deadline_misses: walk.deadline_misses + walk.stranded_misses,
        shed_requests: walk.shed_measured,
        dropped_requests: 0,
        p999_s: latency.p999(),
        peak_queue_depth: peak_queue,
        final_queue_depth,
        corrupted_batches: 0,
        retried_batches: 0,
        dropped_batches: 0,
        recovery_cycles: None,
        recovered: true,
    });
    let report = SimReport {
        name: spec.config.name.clone(),
        horizon_cycles: horizon,
        freq_hz: freq,
        latency,
        completed_requests: walk.completed,
        inference_throughput_ops: 2.0
            * walk.completed_measured as f64
            * timing.macs_per_request as f64
            / measured_s,
        training_throughput_ops: 2.0 * training_macs / elapsed_s,
        training_mmu_cycles: training_cycles,
        breakdown,
        batches_issued: walk.batches_issued,
        incomplete_batches: walk.incomplete_batches,
        training_blocks: 0,
        shed_requests: walk.shed_total,
        slo: slo_report,
    };
    SurrogateRun { report, outcomes: walk.outcomes, energy_j: walk.energy_j }
}

/// Evaluates `spec`'s share of the traffic analytically, discarding
/// the per-request trace. See [`run_static_bounds_traced`].
#[cfg(test)]
pub(crate) fn run_static_bounds(
    spec: &DeviceSpec,
    upper_cycles: u64,
    arrivals: &[u64],
    horizon: u64,
    slo: Option<SloSpec>,
) -> SimReport {
    run_static_bounds_traced(spec, upper_cycles, arrivals, horizon, slo).report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::tests::test_device;
    use equinox_sim::loadgen::poisson_arrivals;
    use equinox_sim::{BatchSample, FaultScenario};

    /// Arrivals at `load ×` the device's saturation rate.
    fn arrivals_at(load: f64, horizon: u64, seed: u64) -> Vec<u64> {
        let d = test_device("d0", 1e9, false);
        let rate = load * d.max_request_rate_per_s() / 1e9;
        poisson_arrivals(rate, horizon, seed).unwrap()
    }

    /// Arrivals at 30 % of the device's saturation rate.
    fn light_arrivals(horizon: u64) -> Vec<u64> {
        arrivals_at(0.3, horizon, 7)
    }

    #[test]
    fn exact_bounds_reproduce_the_engine_on_light_traffic() {
        // With lower = upper = the nominal service time, the surrogate
        // and the engine implement the same queue; their latency
        // distributions must agree to the engine's event epsilons.
        let d = test_device("d0", 1e9, false);
        let horizon = 2_000 * 16_000;
        let arrivals = light_arrivals(horizon);
        let slo = Some(SloSpec::new(16.0 * 16_000.0 / 1e9).unwrap());
        let surrogate =
            run_static_bounds(&d, d.timing.total_cycles, &arrivals, horizon, slo);
        let engine = d
            .simulation()
            .unwrap()
            .run_faulted(&arrivals, horizon, &FaultScenario::baseline(), slo)
            .unwrap();
        assert_eq!(surrogate.completed_requests, engine.completed_requests);
        assert_eq!(surrogate.batches_issued, engine.batches_issued);
        assert_eq!(surrogate.incomplete_batches, engine.incomplete_batches);
        assert_eq!(surrogate.latency.count(), engine.latency.count());
        for (a, b) in surrogate.latency.samples().iter().zip(engine.latency.samples()) {
            assert!((a - b).abs() * 1e9 < 1.0, "{a} vs {b}");
        }
        assert_eq!(
            surrogate.slo.as_ref().unwrap().deadline_misses,
            engine.slo.as_ref().unwrap().deadline_misses
        );
    }

    #[test]
    fn looser_upper_bounds_only_raise_latency() {
        let d = test_device("d0", 1e9, false);
        let horizon = 2_000 * 16_000;
        let arrivals = light_arrivals(horizon);
        let tight = run_static_bounds(&d, d.timing.total_cycles, &arrivals, horizon, None);
        let loose =
            run_static_bounds(&d, 2 * d.timing.total_cycles, &arrivals, horizon, None);
        assert!(loose.latency.max() > tight.latency.max());
        assert!(loose.latency.p99() >= tight.latency.p99());
        // Pessimism cycles land in `other`, not in useful work (the
        // slower server may also complete fewer batches, so useful
        // work can only shrink).
        assert!(loose.breakdown.other > tight.breakdown.other);
        assert!(loose.breakdown.working <= tight.breakdown.working);
    }

    #[test]
    fn static_batching_strands_the_partial_tail() {
        let mut d = test_device("d0", 1e9, false);
        d.config.batching = BatchingPolicy::Static;
        let horizon: u64 = 1_000_000;
        // 4 requests on a batch-16 device: no batch ever forms.
        let arrivals: Vec<u64> = (0..4).map(|i| horizon / 2 + i).collect();
        let slo = Some(SloSpec::new(1e-6).unwrap());
        let r = run_static_bounds(&d, d.timing.total_cycles, &arrivals, horizon, slo);
        assert_eq!(r.completed_requests, 0);
        assert_eq!(r.batches_issued, 0);
        let s = r.slo.unwrap();
        assert_eq!(s.final_queue_depth, 4);
        assert_eq!(s.deadline_misses, 4, "stranded requests count as misses");
    }

    #[test]
    fn idle_harvest_is_conservative_against_the_engine() {
        // No traffic at all: the engine harvests with the whole machine
        // too, so the surrogate must match it up to DRAM capping; with
        // light traffic the surrogate must never credit more than the
        // engine's co-run-aware accounting.
        let d = test_device("d0", 1e9, true);
        let horizon = 2_000 * 16_000;
        let quiet = run_static_bounds(&d, d.timing.total_cycles, &[], horizon, None);
        assert!(quiet.training_mmu_cycles > 0.0);
        let engine_quiet = d
            .simulation()
            .unwrap()
            .run_faulted(&[], horizon, &FaultScenario::baseline(), None)
            .unwrap();
        assert!(
            quiet.training_mmu_cycles <= engine_quiet.training_mmu_cycles + 1.0,
            "{} vs {}",
            quiet.training_mmu_cycles,
            engine_quiet.training_mmu_cycles
        );
        let arrivals = light_arrivals(horizon);
        let busy = run_static_bounds(&d, d.timing.total_cycles, &arrivals, horizon, None);
        let engine_busy = d
            .simulation()
            .unwrap()
            .run_faulted(&arrivals, horizon, &FaultScenario::baseline(), None)
            .unwrap();
        assert!(
            busy.training_mmu_cycles <= engine_busy.training_mmu_cycles + 1.0,
            "{} vs {}",
            busy.training_mmu_cycles,
            engine_busy.training_mmu_cycles
        );
    }

    #[test]
    fn shed_counts_are_honest_against_the_engine() {
        // A shedding device under 1.5× overload, exact bounds: the
        // surrogate implements the engine's shed rule over the same
        // queue, so the shed ledger must agree — not be hardcoded zero.
        let mut d = test_device("d0", 1e9, false);
        d.config.degradation.shed_above = Some(8 * 16);
        let horizon = 2_000 * 16_000;
        let arrivals = arrivals_at(1.5, horizon, 11);
        let slo = Some(SloSpec::new(16.0 * 16_000.0 / 1e9).unwrap());
        let surrogate =
            run_static_bounds(&d, d.timing.total_cycles, &arrivals, horizon, slo);
        let engine = d
            .simulation()
            .unwrap()
            .run_faulted(&arrivals, horizon, &FaultScenario::baseline(), slo)
            .unwrap();
        assert!(surrogate.shed_requests > 0, "overload must shed");
        assert_eq!(surrogate.shed_requests, engine.shed_requests);
        assert_eq!(
            surrogate.slo.as_ref().unwrap().shed_requests,
            engine.slo.as_ref().unwrap().shed_requests
        );
        assert_eq!(surrogate.completed_requests, engine.completed_requests);
        // Shedding bounds the queue at the threshold.
        assert!(surrogate.slo.as_ref().unwrap().peak_queue_depth <= 8 * 16 + 16);
    }

    /// A single-bucket table whose every draw is the device's nominal
    /// occupancy at the given stretch, pricing `energy` joules a batch.
    fn degenerate_table(d: &DeviceSpec, stretch: f64, energy: f64) -> FittedTable {
        let nominal = d.timing.total_cycles;
        let samples: Vec<BatchSample> = (0..64)
            .map(|i| BatchSample {
                queue_depth: i % 64,
                real: d.timing.batch,
                start_cycle: 0.0,
                end_cycle: nominal as f64 * stretch,
                occupancy_cycles: nominal as f64,
            })
            .collect();
        FittedTable::fit(
            &d.config.name,
            d.timing.batch,
            nominal,
            nominal,
            energy,
            energy,
            vec![],
            &samples,
        )
        .unwrap()
    }

    #[test]
    fn fitted_with_a_degenerate_table_reproduces_the_static_walk() {
        // A [nominal, nominal] envelope at stretch 1 collapses the
        // fitted model onto the static-bounds walk: the reports must
        // agree exactly, whatever the draw seed, and the energy ledger
        // must price every completed batch.
        let d = test_device("d0", 1e9, false);
        let horizon = 2_000 * 16_000;
        let arrivals = light_arrivals(horizon);
        let slo = Some(SloSpec::new(16.0 * 16_000.0 / 1e9).unwrap());
        let table = degenerate_table(&d, 1.0, 0.5);
        let fitted = run_fitted_traced(&d, &table, &arrivals, horizon, slo, 99);
        let statik =
            run_static_bounds_traced(&d, d.timing.total_cycles, &arrivals, horizon, slo);
        assert_eq!(fitted.report.completed_requests, statik.report.completed_requests);
        assert_eq!(fitted.report.batches_issued, statik.report.batches_issued);
        assert_eq!(fitted.report.latency.samples(), statik.report.latency.samples());
        assert_eq!(fitted.outcomes.len(), statik.outcomes.len());
        assert_eq!(statik.energy_j, 0.0, "the static model has no energy envelope");
        assert!(fitted.energy_j > 0.0);
        let batches = (fitted.energy_j / 0.5).round();
        assert!((fitted.energy_j - batches * 0.5).abs() < 1e-9, "0.5 J per batch");
        let reseeded = run_fitted_traced(&d, &table, &arrivals, horizon, slo, 100);
        assert_eq!(reseeded.report.latency.samples(), fitted.report.latency.samples());
    }

    #[test]
    fn fitted_stretch_lengthens_latency_and_credits_corun_harvest() {
        let d = test_device("d0", 1e9, true);
        let horizon = 2_000 * 16_000;
        let arrivals = light_arrivals(horizon);
        let calm = degenerate_table(&d, 1.0, 0.1);
        let stretched = degenerate_table(&d, 2.0, 0.1);
        let a = run_fitted_traced(&d, &calm, &arrivals, horizon, None, 7);
        let b = run_fitted_traced(&d, &stretched, &arrivals, horizon, None, 7);
        assert!(
            b.report.latency.p99() > a.report.latency.p99(),
            "contention stretch must lengthen the tail: {} vs {}",
            b.report.latency.p99(),
            a.report.latency.p99()
        );
        // Both harvest; the stretched run's occupancy cycles co-run
        // with training (duration − occupancy is credited), so the
        // harvest does not collapse even though wall-clock busy
        // doubles.
        assert!(a.report.training_mmu_cycles > 0.0);
        assert!(
            b.report.training_mmu_cycles > 0.6 * a.report.training_mmu_cycles,
            "co-run credit must keep the stretched harvest close: {} vs {}",
            b.report.training_mmu_cycles,
            a.report.training_mmu_cycles
        );
        // Completed outcomes carry their occupancy share for
        // displacement attribution.
        let busy: f64 = b
            .outcomes
            .iter()
            .map(|o| match o {
                RequestOutcome::Completed { busy_cycles, .. } => *busy_cycles,
                _ => 0.0,
            })
            .sum();
        // Each completed batch's members share exactly its occupancy
        // (here the nominal), so the total is a whole number of
        // batches — at least as many as the completed requests fill.
        let batches = busy / d.timing.total_cycles as f64;
        assert!(
            (batches - batches.round()).abs() < 1e-6,
            "busy shares must sum to whole batches of occupancy, got {batches}"
        );
        assert!(batches >= b.report.completed_requests as f64 / d.timing.batch as f64);
    }

    #[test]
    fn fitted_draws_depend_on_contention_bucket() {
        // Two buckets: calm below depth 8, stretched above. Overload
        // traffic must land in the slow bucket and show a longer tail
        // than light traffic does.
        let d = test_device("d0", 1e9, true);
        let nominal = d.timing.total_cycles;
        let samples: Vec<BatchSample> = (0..200)
            .map(|i| {
                let (depth, stretch) = if i % 2 == 0 { (0, 1.0) } else { (64, 1.9) };
                BatchSample {
                    queue_depth: depth,
                    real: d.timing.batch,
                    start_cycle: 0.0,
                    end_cycle: nominal as f64 * stretch,
                    occupancy_cycles: nominal as f64,
                }
            })
            .collect();
        let table = FittedTable::fit(
            &d.config.name,
            d.timing.batch,
            nominal,
            nominal,
            0.0,
            0.0,
            vec![8],
            &samples,
        )
        .unwrap();
        let horizon = 2_000 * 16_000;
        let light = run_fitted_traced(&d, &table, &arrivals_at(0.2, horizon, 3), horizon, None, 5);
        let heavy = run_fitted_traced(&d, &table, &arrivals_at(0.9, horizon, 3), horizon, None, 5);
        assert!(heavy.report.latency.p99() > light.report.latency.p99());
        assert!(heavy.report.training_mmu_cycles > 0.0, "co-run harvest under contention");
    }

    #[test]
    fn outcome_trace_conserves_requests_and_matches_the_report() {
        for (load, shed_above) in [(0.3, None), (1.5, Some(64)), (1.5, None)] {
            let mut d = test_device("d0", 1e9, false);
            d.config.degradation.shed_above = shed_above;
            let horizon = 1_000 * 16_000;
            let arrivals = arrivals_at(load, horizon, 5);
            let slo = Some(SloSpec::new(16.0 * 16_000.0 / 1e9).unwrap());
            let run =
                run_static_bounds_traced(&d, d.timing.total_cycles, &arrivals, horizon, slo);
            assert_eq!(run.outcomes.len(), arrivals.len());
            let mut completed = 0u64;
            let mut shed = 0u64;
            let mut stranded = 0usize;
            for o in &run.outcomes {
                match o {
                    RequestOutcome::Completed { latency_s, .. } => {
                        assert!(*latency_s > 0.0);
                        completed += 1;
                    }
                    RequestOutcome::Shed { .. } => shed += 1,
                    RequestOutcome::Stranded { .. } => stranded += 1,
                }
            }
            assert_eq!(completed, run.report.completed_requests, "load {load}");
            assert_eq!(shed, run.report.shed_requests, "load {load}");
            assert_eq!(
                stranded,
                run.report.slo.as_ref().unwrap().final_queue_depth,
                "load {load}"
            );
            assert_eq!(completed + shed + stranded as u64, arrivals.len() as u64);
        }
    }
}
