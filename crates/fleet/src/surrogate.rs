//! The static-bounds surrogate: an analytic device evaluator.
//!
//! A [`Fidelity::StaticBounds`](crate::Fidelity::StaticBounds) device
//! skips the discrete-event engine and answers from a closed-form walk
//! over its arrival stream. The walk mirrors the dispatcher's
//! batch-formation rules exactly — full batches issue at their last
//! arrival, adaptive batching issues the partial batch when the oldest
//! waiting request has aged `threshold × nominal service`, static
//! batching never issues a partial — but charges every batch the
//! *upper* static service bound and serves batches back to back on one
//! MMU. The result is deliberately one-sided:
//!
//! - **Latency is conservative.** Real service never exceeds the upper
//!   bound (that is the bounds pass's soundness claim, calibrated by
//!   the `bounds` regen gate), and a single serial server with no
//!   overlap is the slowest legal schedule, so surrogate latencies
//!   upper-bound the engine's.
//! - **Harvest is conservative.** Training is credited only for cycles
//!   the MMU is fully idle, capped by what DRAM staging can feed —
//!   never the co-run share the engine's priority/fair schedulers
//!   award while inference is in flight.
//!
//! Faults, software scheduling, and degradation knobs are *not*
//! modelled; [`crate::Fleet::new`] rejects surrogate devices that
//! request them.

use crate::device::DeviceSpec;
use equinox_sim::{
    BatchingPolicy, CostModel, CycleBreakdown, LatencyStats, SchedulerPolicy, SimReport,
    SloReport, SloSpec, WARMUP_FRACTION,
};

/// One formed batch: member arrivals (device-clock cycles) and the
/// cycle it became ready to serve.
struct FormedBatch {
    arrivals: Vec<u64>,
    ready: f64,
}

/// Mirrors the engine's batch-formation rules over a sorted arrival
/// stream: full batches of `n` issue at their last arrival; under an
/// adaptive deadline the partially-formed batch issues when the oldest
/// member has waited `threshold` cycles. Returns the formed batches in
/// issue order plus any requests still forming at the horizon.
fn form_batches(
    arrivals: &[u64],
    n: usize,
    threshold: Option<f64>,
    horizon: u64,
) -> (Vec<FormedBatch>, Vec<u64>) {
    let mut formed = Vec::new();
    let mut forming: Vec<u64> = Vec::new();
    for &t in arrivals {
        if let (Some(thr), Some(&first)) = (threshold, forming.first()) {
            let deadline = first as f64 + thr;
            if deadline <= t as f64 {
                formed.push(FormedBatch { arrivals: std::mem::take(&mut forming), ready: deadline });
            }
        }
        forming.push(t);
        if forming.len() >= n {
            formed.push(FormedBatch { arrivals: std::mem::take(&mut forming), ready: t as f64 });
        }
    }
    if let (Some(thr), Some(&first)) = (threshold, forming.first()) {
        let deadline = first as f64 + thr;
        if deadline < horizon as f64 {
            formed.push(FormedBatch { arrivals: std::mem::take(&mut forming), ready: deadline });
        }
    }
    (formed, forming)
}

/// Evaluates `spec`'s share of the traffic analytically (see the
/// module docs for the model and its conservatisms). `arrivals` are
/// sorted device-clock cycles; the returned report has the same shape
/// the engine produces, so fleet merging is fidelity-agnostic.
pub(crate) fn run_static_bounds(
    spec: &DeviceSpec,
    upper_cycles: u64,
    arrivals: &[u64],
    horizon: u64,
    slo: Option<SloSpec>,
) -> SimReport {
    let freq = spec.config.freq_hz;
    let timing = &spec.timing;
    let n = timing.batch.max(1);
    let service = upper_cycles as f64;
    // The dispatcher's formation deadline is keyed to the *nominal*
    // service time (it is a policy of the real hardware, not of the
    // bound), exactly as in the engine.
    let threshold = match spec.config.batching {
        BatchingPolicy::Static => None,
        BatchingPolicy::Adaptive { threshold_x } => {
            Some(threshold_x * timing.total_cycles as f64)
        }
    };
    let (formed, leftover) = form_batches(arrivals, n, threshold, horizon);

    let warmup = horizon as f64 * WARMUP_FRACTION;
    let useful = timing.mmu_busy_cycles as f64 * timing.mmu_utilization;
    let mut breakdown = CycleBreakdown::default();
    let mut latencies = Vec::new();
    let mut busy_until = 0.0_f64;
    let mut inference_busy = 0.0_f64;
    let mut completed: u64 = 0;
    let mut completed_measured: usize = 0;
    let mut deadline_misses = 0usize;
    let mut incomplete_batches: u64 = 0;
    let mut peak_queue = 0usize;
    let mut served_requests = 0usize;
    let mut stranded: Vec<u64> = Vec::new();
    for batch in &formed {
        let start = busy_until.max(batch.ready);
        let end = start + service;
        if end > horizon as f64 {
            // This batch (and, the server being serial, every later
            // one) cannot complete inside the horizon.
            stranded.extend(batch.arrivals.iter().copied());
            continue;
        }
        // Queue depth the instant this batch enters service: everything
        // arrived by then that is neither served nor in this batch.
        let arrived = arrivals.partition_point(|&a| (a as f64) <= start);
        peak_queue = peak_queue.max(arrived - served_requests - batch.arrivals.len());
        busy_until = end;
        inference_busy += service;
        served_requests += batch.arrivals.len();
        let real = batch.arrivals.len();
        if real < n {
            incomplete_batches += 1;
        }
        for &a in &batch.arrivals {
            completed += 1;
            if a as f64 >= warmup {
                let latency_s = (end - a as f64) / freq;
                latencies.push(latency_s);
                completed_measured += 1;
                if let Some(spec) = &slo {
                    if latency_s > spec.deadline_s {
                        deadline_misses += 1;
                    }
                }
            }
        }
        // The engine's per-batch Figure 8 accounting, plus the bound's
        // pessimism cycles (upper − nominal) as wasted time.
        breakdown.working += useful * real as f64 / n as f64;
        breakdown.dummy += useful * (n - real) as f64 / n as f64;
        breakdown.other += (timing.mmu_busy_cycles as f64 - useful)
            + timing.stall_cycles as f64
            + (service - timing.total_cycles as f64);
    }
    stranded.extend(leftover);
    let final_queue_depth = stranded.len();
    peak_queue = peak_queue.max(final_queue_depth);

    // Idle-cycle harvest, DRAM-capped (conservative: no co-run share).
    let admits_training = spec.training.is_some()
        && !matches!(spec.config.scheduler, SchedulerPolicy::InferenceOnly);
    let idle = (horizon as f64 - inference_busy).max(0.0);
    let (training_cycles, training_macs) = if admits_training {
        let profile = spec.training.as_ref().expect("admits_training checked");
        let bytes_per_exec =
            profile.iteration_dram_bytes as f64 / profile.iteration_mmu_cycles as f64;
        let supply = CostModel::from_config(&spec.config).dram_bytes_per_cycle;
        let rate = if bytes_per_exec > 0.0 { (supply / bytes_per_exec).min(1.0) } else { 1.0 };
        let cycles = idle * rate;
        let macs_per_cycle =
            profile.iteration_macs as f64 / profile.iteration_mmu_cycles as f64;
        (cycles, cycles * macs_per_cycle)
    } else {
        (0.0, 0.0)
    };
    breakdown.working += training_cycles;
    breakdown.idle = (idle - training_cycles).max(0.0);

    let elapsed_s = horizon as f64 / freq;
    let measured_s = elapsed_s * (1.0 - WARMUP_FRACTION);
    let latency = LatencyStats::from_samples(latencies);
    let slo_report = slo.map(|spec| {
        // Mirrors the engine's stranded accounting: requests still
        // queued at the horizon whose deadline already expired count
        // as misses.
        let stranded_misses = stranded
            .iter()
            .filter(|&&a| {
                (a as f64) >= warmup && (horizon as f64 - a as f64) / freq > spec.deadline_s
            })
            .count();
        SloReport {
            deadline_s: spec.deadline_s,
            measured_requests: completed_measured + stranded_misses,
            deadline_misses: deadline_misses + stranded_misses,
            shed_requests: 0,
            dropped_requests: 0,
            p999_s: latency.p999(),
            peak_queue_depth: peak_queue,
            final_queue_depth,
            corrupted_batches: 0,
            retried_batches: 0,
            dropped_batches: 0,
            recovery_cycles: None,
            recovered: true,
        }
    });
    SimReport {
        name: spec.config.name.clone(),
        horizon_cycles: horizon,
        freq_hz: freq,
        latency,
        completed_requests: completed,
        inference_throughput_ops: 2.0
            * completed_measured as f64
            * timing.macs_per_request as f64
            / measured_s,
        training_throughput_ops: 2.0 * training_macs / elapsed_s,
        training_mmu_cycles: training_cycles,
        breakdown,
        batches_issued: formed.len() as u64,
        incomplete_batches,
        training_blocks: 0,
        shed_requests: 0,
        slo: slo_report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::tests::test_device;
    use equinox_sim::loadgen::poisson_arrivals;
    use equinox_sim::FaultScenario;

    /// Arrivals at 30 % of the device's saturation rate.
    fn light_arrivals(horizon: u64) -> Vec<u64> {
        let d = test_device("d0", 1e9, false);
        let rate = 0.3 * d.max_request_rate_per_s() / 1e9;
        poisson_arrivals(rate, horizon, 7).unwrap()
    }

    #[test]
    fn exact_bounds_reproduce_the_engine_on_light_traffic() {
        // With lower = upper = the nominal service time, the surrogate
        // and the engine implement the same queue; their latency
        // distributions must agree to the engine's event epsilons.
        let d = test_device("d0", 1e9, false);
        let horizon = 2_000 * 16_000;
        let arrivals = light_arrivals(horizon);
        let slo = Some(SloSpec::new(16.0 * 16_000.0 / 1e9).unwrap());
        let surrogate =
            run_static_bounds(&d, d.timing.total_cycles, &arrivals, horizon, slo);
        let engine = d
            .simulation()
            .unwrap()
            .run_faulted(&arrivals, horizon, &FaultScenario::baseline(), slo)
            .unwrap();
        assert_eq!(surrogate.completed_requests, engine.completed_requests);
        assert_eq!(surrogate.batches_issued, engine.batches_issued);
        assert_eq!(surrogate.incomplete_batches, engine.incomplete_batches);
        assert_eq!(surrogate.latency.count(), engine.latency.count());
        for (a, b) in surrogate.latency.samples().iter().zip(engine.latency.samples()) {
            assert!((a - b).abs() * 1e9 < 1.0, "{a} vs {b}");
        }
        assert_eq!(
            surrogate.slo.as_ref().unwrap().deadline_misses,
            engine.slo.as_ref().unwrap().deadline_misses
        );
    }

    #[test]
    fn looser_upper_bounds_only_raise_latency() {
        let d = test_device("d0", 1e9, false);
        let horizon = 2_000 * 16_000;
        let arrivals = light_arrivals(horizon);
        let tight = run_static_bounds(&d, d.timing.total_cycles, &arrivals, horizon, None);
        let loose =
            run_static_bounds(&d, 2 * d.timing.total_cycles, &arrivals, horizon, None);
        assert!(loose.latency.max() > tight.latency.max());
        assert!(loose.latency.p99() >= tight.latency.p99());
        // Pessimism cycles land in `other`, not in useful work (the
        // slower server may also complete fewer batches, so useful
        // work can only shrink).
        assert!(loose.breakdown.other > tight.breakdown.other);
        assert!(loose.breakdown.working <= tight.breakdown.working);
    }

    #[test]
    fn static_batching_strands_the_partial_tail() {
        let mut d = test_device("d0", 1e9, false);
        d.config.batching = BatchingPolicy::Static;
        let horizon: u64 = 1_000_000;
        // 4 requests on a batch-16 device: no batch ever forms.
        let arrivals: Vec<u64> = (0..4).map(|i| horizon / 2 + i).collect();
        let slo = Some(SloSpec::new(1e-6).unwrap());
        let r = run_static_bounds(&d, d.timing.total_cycles, &arrivals, horizon, slo);
        assert_eq!(r.completed_requests, 0);
        assert_eq!(r.batches_issued, 0);
        let s = r.slo.unwrap();
        assert_eq!(s.final_queue_depth, 4);
        assert_eq!(s.deadline_misses, 4, "stranded requests count as misses");
    }

    #[test]
    fn idle_harvest_is_conservative_against_the_engine() {
        // No traffic at all: the engine harvests with the whole machine
        // too, so the surrogate must match it up to DRAM capping; with
        // light traffic the surrogate must never credit more than the
        // engine's co-run-aware accounting.
        let d = test_device("d0", 1e9, true);
        let horizon = 2_000 * 16_000;
        let quiet = run_static_bounds(&d, d.timing.total_cycles, &[], horizon, None);
        assert!(quiet.training_mmu_cycles > 0.0);
        let engine_quiet = d
            .simulation()
            .unwrap()
            .run_faulted(&[], horizon, &FaultScenario::baseline(), None)
            .unwrap();
        assert!(
            quiet.training_mmu_cycles <= engine_quiet.training_mmu_cycles + 1.0,
            "{} vs {}",
            quiet.training_mmu_cycles,
            engine_quiet.training_mmu_cycles
        );
        let arrivals = light_arrivals(horizon);
        let busy = run_static_bounds(&d, d.timing.total_cycles, &arrivals, horizon, None);
        let engine_busy = d
            .simulation()
            .unwrap()
            .run_faulted(&arrivals, horizon, &FaultScenario::baseline(), None)
            .unwrap();
        assert!(
            busy.training_mmu_cycles <= engine_busy.training_mmu_cycles + 1.0,
            "{} vs {}",
            busy.training_mmu_cycles,
            engine_busy.training_mmu_cycles
        );
    }
}
