//! The fleet itself: one arrival stream in, one [`FleetReport`] out.
//!
//! A run has three stages. First the front end draws the fleet-wide
//! arrival stream (Poisson or diurnal, reusing `equinox_sim::loadgen`)
//! on the *reference clock* — device 0's — and routes every request in
//! one serial pass (see [`crate::routing`]). Then each device
//! simulates its share of the traffic with the full `equinox-sim`
//! event engine, concurrently on the `equinox-par` pool; timestamps
//! are rescaled to each device's own clock, so heterogeneous-frequency
//! fleets compose. Finally the per-device reports are merged in device
//! index order into a [`FleetReport`] — byte-identical at any thread
//! count.

use crate::admission::{AdmissionContext, AdmissionDecision, AdmissionSpec};
use crate::autoscale::{AutoscalePolicy, Autoscaler};
use crate::device::{DeviceSpec, Fidelity};
use crate::report::{free_epochs, DeviceOutcome, FleetReport};
use crate::routing::{Router, RoutingPolicy};
use crate::surrogate::{self, RequestOutcome};
use crate::sync;
use equinox_arith::rng::SplitMix64;
use equinox_isa::EquinoxError;
use equinox_net::InterconnectSpec;
use equinox_sim::loadgen::{
    diurnal_arrivals, poisson_arrivals, split_seed, trace_arrivals, DiurnalProfile, FlashCrowd,
};
use equinox_sim::{ClassLedger, LatencyStats, RequestClass, SchedulerPolicy, SimReport, SloSpec};

/// The seed stream of the paid/free class draw (see the crate docs):
/// far above any device stream, so adding devices never collides.
pub(crate) const CLASS_STREAM: u64 = 1 << 32;

/// The seed stream of the interconnect's background-traffic phases
/// (see the crate docs): above even [`CLASS_STREAM`], so attaching an
/// interconnect never perturbs arrivals, routing, or the class draw.
pub(crate) const INTERCONNECT_STREAM: u64 = 1 << 33;

/// Where the fleet's request traffic comes from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalSource {
    /// Homogeneous Poisson traffic at `load ×` the fleet's aggregate
    /// saturation rate.
    Poisson {
        /// Offered load as a fraction of aggregate fleet saturation.
        load: f64,
    },
    /// Non-homogeneous Poisson traffic following a diurnal profile over
    /// one simulated "day" (the horizon), with the profile's load
    /// fractions applied to the aggregate fleet saturation rate.
    Diurnal {
        /// The day's load profile.
        profile: DiurnalProfile,
    },
    /// Trace-scale traffic: the diurnal day composed with a flash-crowd
    /// window and scaled by `rate_scale`
    /// ([`trace_arrivals`]). `rate_scale = x / trace_mean_load(...)`
    /// pins the day's *mean* offered load to exactly `x ×` fleet
    /// saturation, crowd included — the overload regimes of the `serve`
    /// sweep are calibrated this way.
    Trace {
        /// The day's load profile.
        profile: DiurnalProfile,
        /// Multiplier on the composed profile (1.0 = the profile's own
        /// load fractions against fleet saturation).
        rate_scale: f64,
        /// The flash-crowd window multiplying the diurnal rate.
        crowd: FlashCrowd,
    },
}

/// Parameters of one fleet run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetRunOptions {
    /// The traffic source.
    pub source: ArrivalSource,
    /// The routing policy.
    pub policy: RoutingPolicy,
    /// The admission policy evaluated at the router
    /// ([`AdmissionSpec::AdmitAll`] reproduces the pre-admission
    /// behaviour exactly).
    pub admission: AdmissionSpec,
    /// Reactive autoscaling; `None` keeps every device active for the
    /// whole run.
    pub autoscale: Option<AutoscalePolicy>,
    /// Probability that an arrival is paid-tier (class stream
    /// `CLASS_STREAM`); 1.0 makes every request paid. The draw is
    /// independent of arrivals and routing, so changing the mix never
    /// perturbs the offered traffic.
    pub paid_fraction: f64,
    /// Horizon in reference-clock cycles (device 0's clock).
    pub horizon_cycles: u64,
    /// Master seed; every random stream derives from it via
    /// [`split_seed`] (see the crate docs for the stream map).
    pub seed: u64,
    /// Per-request deadline every device is held against, if any.
    pub slo: Option<SloSpec>,
}

/// A set of devices behind one request router, optionally wired
/// together by a packet-level interconnect.
#[derive(Debug, Clone)]
pub struct Fleet {
    devices: Vec<DeviceSpec>,
    interconnect: Option<InterconnectSpec>,
}

impl Fleet {
    /// Builds a fleet.
    ///
    /// # Errors
    ///
    /// [`EquinoxError::InvalidArgument`] if `devices` is empty, and
    /// [`EquinoxError::FaultModel`] if a device scenario carries
    /// traffic bursts — fleet traffic enters only through the router,
    /// so per-device burst injection would bypass the policy under
    /// study (throttles, stalls, and corruption are device-local and
    /// fine).
    pub fn new(devices: Vec<DeviceSpec>) -> Result<Self, EquinoxError> {
        if devices.is_empty() {
            return Err(EquinoxError::invalid_argument(
                "Fleet::new",
                "a fleet needs at least one device",
            ));
        }
        if let Some(d) = devices.iter().find(|d| !d.scenario.bursts.is_empty()) {
            return Err(EquinoxError::fault_model(
                d.scenario.name.clone(),
                "device scenarios must not inject burst traffic; fleet \
                 traffic enters through the router (use a Poisson or \
                 diurnal source instead)",
            ));
        }
        // Surrogate devices (static-bounds or fitted): the envelope
        // must be a valid interval around the served program, and
        // neither surrogate models faults, software scheduling, or
        // degradation beyond load shedding — reject combinations whose
        // answer it could not stand behind.
        for d in &devices {
            let tier = match &d.fidelity {
                Fidelity::CycleAccurate => continue,
                Fidelity::StaticBounds { lower_cycles, upper_cycles } => {
                    if *lower_cycles == 0 || lower_cycles > upper_cycles {
                        return Err(EquinoxError::invalid_argument(
                            "Fleet::new",
                            "static-bounds fidelity needs 0 < lower_cycles ≤ upper_cycles",
                        ));
                    }
                    "static-bounds"
                }
                Fidelity::Fitted(table) => {
                    if table.batch != d.timing.batch {
                        return Err(EquinoxError::invalid_argument(
                            "Fleet::new",
                            format!(
                                "fitted table '{}' was fitted at batch {} but device \
                                 '{}' serves batch {}",
                                table.model, table.batch, d.config.name, d.timing.batch
                            ),
                        ));
                    }
                    if !(table.lower_cycles..=table.upper_cycles)
                        .contains(&d.timing.total_cycles)
                    {
                        return Err(EquinoxError::invalid_argument(
                            "Fleet::new",
                            format!(
                                "device '{}' nominal service time {} cycles lies outside \
                                 fitted table '{}' envelope [{}, {}]",
                                d.config.name,
                                d.timing.total_cycles,
                                table.model,
                                table.lower_cycles,
                                table.upper_cycles
                            ),
                        ));
                    }
                    "fitted"
                }
            };
            if !d.scenario.is_fault_free() {
                return Err(EquinoxError::fault_model(
                    d.scenario.name.clone(),
                    format!(
                        "the {tier} surrogate cannot model injected faults; use \
                         cycle-accurate fidelity for faulted devices"
                    ),
                ));
            }
            let deg = &d.config.degradation;
            let shed_only = deg.preempt_training_above.is_none()
                && deg.shrink_batch_above.is_none()
                && deg.retry.max_attempts == 0;
            if matches!(d.config.scheduler, SchedulerPolicy::Software { .. }) || !shed_only {
                return Err(EquinoxError::invalid_argument(
                    "Fleet::new",
                    format!(
                        "the {tier} surrogate models only the hardware schedulers \
                         and, of the degradation levers, only load shedding; use \
                         cycle-accurate fidelity"
                    ),
                ));
            }
        }
        Ok(Fleet { devices, interconnect: None })
    }

    /// Attaches a packet-level interconnect: every free epoch then
    /// pays for one gradient all-reduce round over the harvesting
    /// devices, and the report gains a [`crate::sync::SyncReport`].
    ///
    /// # Errors
    ///
    /// [`EquinoxError::InvalidArgument`] when `spec` fails
    /// [`InterconnectSpec::validate`] against this fleet's size.
    pub fn with_interconnect(mut self, spec: InterconnectSpec) -> Result<Self, EquinoxError> {
        spec.validate(self.devices.len())?;
        self.interconnect = Some(spec);
        Ok(self)
    }

    /// The attached interconnect, if any.
    pub fn interconnect(&self) -> Option<&InterconnectSpec> {
        self.interconnect.as_ref()
    }

    /// The device specifications, in index order.
    pub fn devices(&self) -> &[DeviceSpec] {
        &self.devices
    }

    /// Aggregate saturation request rate of the fleet, requests/s.
    pub fn max_request_rate_per_s(&self) -> f64 {
        self.devices.iter().map(DeviceSpec::max_request_rate_per_s).sum()
    }

    /// The reference clock (device 0's), Hz.
    pub fn reference_freq_hz(&self) -> f64 {
        self.devices[0].config.freq_hz
    }

    /// Runs the fleet (see the module docs for the three stages).
    ///
    /// # Errors
    ///
    /// [`EquinoxError::InvalidArgument`] for a `paid_fraction` outside
    /// `[0, 1]` or degenerate admission/autoscale parameters;
    /// otherwise propagates load-generation and per-device simulation
    /// errors ([`EquinoxError::InvalidArgument`],
    /// [`EquinoxError::FaultModel`]); the first failing device (by
    /// index) wins, deterministically.
    pub fn run(&self, opts: &FleetRunOptions) -> Result<FleetReport, EquinoxError> {
        if !opts.paid_fraction.is_finite() || !(0.0..=1.0).contains(&opts.paid_fraction) {
            return Err(EquinoxError::invalid_argument(
                "Fleet::run",
                format!("paid_fraction must be in [0, 1], got {}", opts.paid_fraction),
            ));
        }
        opts.admission.validate()?;
        if let Some(p) = &opts.autoscale {
            p.validate(self.devices.len())?;
        }
        let freq_ref = self.reference_freq_hz();
        let fleet_rate_per_cycle = self.max_request_rate_per_s() / freq_ref;
        let arrival_seed = split_seed(opts.seed, 0);
        let arrivals = match opts.source {
            ArrivalSource::Poisson { load } => {
                let rate = equinox_sim::loadgen::rate_for_load(load, fleet_rate_per_cycle)?;
                poisson_arrivals(rate, opts.horizon_cycles, arrival_seed)?
            }
            ArrivalSource::Diurnal { profile } => {
                diurnal_arrivals(&profile, fleet_rate_per_cycle, opts.horizon_cycles, arrival_seed)?
            }
            ArrivalSource::Trace { profile, rate_scale, crowd } => trace_arrivals(
                &profile,
                &[crowd],
                rate_scale,
                fleet_rate_per_cycle,
                opts.horizon_cycles,
                arrival_seed,
            )?,
        };

        // Stage 1: the serial front-end pass. Per arrival: draw the
        // class, let the autoscaler adjust the active set, let the
        // routing policy pick a candidate among the active devices,
        // then let the admission policy admit / redirect / shed. Only
        // admitted requests charge the router and reach a device;
        // binning is on each device's own clock (both maps are
        // monotone, so per-device streams stay sorted and inside the
        // device's horizon).
        let mut router = Router::new(&self.devices, opts.policy, split_seed(opts.seed, 1));
        let mut admission = opts.admission.build(&self.devices);
        let mut scaler = opts.autoscale.map(|p| Autoscaler::new(p, self.devices.len()));
        let mut class_rng = SplitMix64::seed_from_u64(split_seed(opts.seed, CLASS_STREAM));
        let all: Vec<usize> = (0..self.devices.len()).collect();
        let deadline_s = opts.slo.map(|s| s.deadline_s);
        let mut per_device: Vec<DeviceShare> = vec![(Vec::new(), Vec::new()); self.devices.len()];
        let mut offered_by_class = [0usize; 2];
        let mut shed_by_class = [0usize; 2];
        for &t in &arrivals {
            let t_s = t as f64 / freq_ref;
            let class = if class_rng.next_f64() < opts.paid_fraction {
                RequestClass::Paid
            } else {
                RequestClass::Free
            };
            offered_by_class[class.index()] += 1;
            router.decay_to(t_s);
            if let Some(s) = scaler.as_mut() {
                s.step(t_s, router.backlogs(), &self.devices);
            }
            let active: &[usize] = scaler.as_ref().map_or(&all, |s| s.active_list());
            let candidate = router.pick(active);
            let decision = admission.decide(&AdmissionContext {
                t_s,
                class,
                candidate,
                backlog_s: router.backlogs(),
                devices: &self.devices,
                active,
                deadline_s,
            });
            let d = match decision {
                AdmissionDecision::Admit => candidate,
                AdmissionDecision::AdmitOn(d) => d,
                AdmissionDecision::Shed => {
                    shed_by_class[class.index()] += 1;
                    continue;
                }
            };
            router.charge(d);
            let scale = self.devices[d].config.freq_hz / freq_ref;
            let t_local = if scale == 1.0 { t } else { (t as f64 * scale) as u64 };
            per_device[d].0.push(t_local);
            per_device[d].1.push(class);
        }

        // Stage 2: per-device simulations, concurrent and index-merged.
        // Surrogate devices report per-request outcomes, so their class
        // ledgers attribute completions exactly; cycle-accurate devices
        // only report aggregates, so their admitted requests land in
        // `unattributed_requests`.
        let assigned: Vec<usize> = per_device.iter().map(|(a, _)| a.len()).collect();
        let work: Vec<(usize, DeviceShare)> = per_device.into_iter().enumerate().collect();
        let results: Vec<Result<DeviceResult, EquinoxError>> =
            equinox_par::parallel_map(work, |(i, (device_arrivals, classes))| {
                let spec = &self.devices[i];
                let scale = spec.config.freq_hz / freq_ref;
                let horizon = if scale == 1.0 {
                    opts.horizon_cycles
                } else {
                    (opts.horizon_cycles as f64 * scale).ceil() as u64
                };
                let displacement = harvest_displacement(spec);
                match &spec.fidelity {
                    Fidelity::CycleAccurate => {
                        let report = spec.simulation()?.run_faulted(
                            &device_arrivals,
                            horizon,
                            &spec.scenario,
                            opts.slo,
                        )?;
                        let ledgers = attributed_ledgers(None, &classes, deadline_s, None);
                        Ok((report, ledgers, 0.0))
                    }
                    Fidelity::StaticBounds { upper_cycles, .. } => {
                        let run = surrogate::run_static_bounds_traced(
                            spec,
                            *upper_cycles,
                            &device_arrivals,
                            horizon,
                            opts.slo,
                        );
                        let ledgers = attributed_ledgers(
                            Some(&run.outcomes),
                            &classes,
                            deadline_s,
                            displacement,
                        );
                        Ok((run.report, ledgers, run.energy_j))
                    }
                    Fidelity::Fitted(table) => {
                        // Stream `2 + i` is free for the per-batch
                        // draws: fitted devices are fault-free, so no
                        // burst traffic ever uses it (see crate docs).
                        let run = surrogate::run_fitted_traced(
                            spec,
                            table,
                            &device_arrivals,
                            horizon,
                            opts.slo,
                            split_seed(opts.seed, 2 + i as u64),
                        );
                        let ledgers = attributed_ledgers(
                            Some(&run.outcomes),
                            &classes,
                            deadline_s,
                            displacement,
                        );
                        Ok((run.report, ledgers, run.energy_j))
                    }
                }
            });

        // Stage 3: merge in device-index order; the front-end edge
        // ledger (offered and admission-shed counts) joins the
        // per-device attribution ledgers.
        let mut devices = Vec::with_capacity(self.devices.len());
        let mut device_ledgers: Vec<[ClassLedger; 2]> = Vec::with_capacity(self.devices.len());
        for ((spec, result), assigned) in self.devices.iter().zip(results).zip(assigned) {
            let (report, ledgers, inference_energy_j) = result?;
            device_ledgers.push(ledgers);
            devices.push(DeviceOutcome {
                name: spec.config.name.clone(),
                assigned_requests: assigned,
                free_epochs: free_epochs(&report, spec.training.as_ref()),
                inference_energy_j,
                report,
            });
        }
        let mut class_ledgers: Vec<ClassLedger> = RequestClass::ALL
            .iter()
            .map(|&class| {
                let mut edge = ClassLedger::empty(class);
                edge.offered_requests = offered_by_class[class.index()];
                edge.shed_requests = shed_by_class[class.index()];
                ClassLedger::merged(
                    class,
                    std::iter::once(&edge)
                        .chain(device_ledgers.iter().map(|l| &l[class.index()])),
                )
            })
            .collect();
        let sync = self
            .interconnect
            .as_ref()
            .map(|spec| {
                sync::evaluate_sync(
                    spec,
                    &self.devices,
                    &devices,
                    &mut class_ledgers,
                    opts,
                    freq_ref,
                )
            })
            .transpose()?;
        Ok(FleetReport {
            policy: opts.policy.name(),
            admission: opts.admission.name(),
            horizon_cycles: opts.horizon_cycles,
            freq_hz: freq_ref,
            offered_requests: arrivals.len(),
            admission_shed_requests: shed_by_class[0] + shed_by_class[1],
            latency: LatencyStats::merged(devices.iter().map(|d| &d.report.latency)),
            class_ledgers,
            scaling_spans: scaler.map(Autoscaler::into_spans).unwrap_or_default(),
            sync,
            devices,
        })
    }
}

/// One device's routed traffic: local-clock arrivals and, in step,
/// each request's priority class.
type DeviceShare = (Vec<u64>, Vec<RequestClass>);

/// One device's evaluation: the engine-shaped report, its per-class
/// attribution ledgers, and the inference energy (fitted devices only).
type DeviceResult = (SimReport, [ClassLedger; 2], f64);

/// The harvest-displacement price of one MMU busy cycle on `spec`:
/// `(harvest rate, cycles per epoch)`, or `None` when the device
/// cannot harvest (no training service, or an inference-only
/// scheduler) — then no traffic displaces anything.
fn harvest_displacement(spec: &DeviceSpec) -> Option<(f64, f64)> {
    let profile = spec.training.as_ref()?;
    if matches!(spec.config.scheduler, SchedulerPolicy::InferenceOnly) {
        return None;
    }
    Some((surrogate::idle_harvest_rate(spec), crate::report::epoch_cycles(profile)))
}

/// Builds one device's per-class attribution ledgers. With per-request
/// `outcomes` (surrogate fidelity) completions, sheds, and stranded
/// misses are attributed to their class exactly; without them
/// (cycle-accurate fidelity) every admitted request is counted as
/// unattributable instead of guessed. Offered counts stay zero — the
/// fleet edge owns them. On a harvesting device (`displacement` =
/// the harvest rate and epoch cost from [`harvest_displacement`]) each
/// completion is additionally charged the free-training epochs its MMU
/// occupancy displaced — first-order attribution: had the request not
/// been served, those cycles would have been idle and harvested at the
/// DRAM-capped rate.
fn attributed_ledgers(
    outcomes: Option<&[RequestOutcome]>,
    classes: &[RequestClass],
    deadline_s: Option<f64>,
    displacement: Option<(f64, f64)>,
) -> [ClassLedger; 2] {
    let mut ledgers = RequestClass::ALL.map(ClassLedger::empty);
    let Some(outcomes) = outcomes else {
        for &c in classes {
            ledgers[c.index()].unattributed_requests += 1;
        }
        return ledgers;
    };
    debug_assert_eq!(outcomes.len(), classes.len());
    let epochs_per_busy_cycle = displacement
        .map(|(rate, epoch_cycles)| if epoch_cycles > 0.0 { rate / epoch_cycles } else { 0.0 })
        .unwrap_or(0.0);
    let mut samples: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
    for (&o, &c) in outcomes.iter().zip(classes) {
        let l = &mut ledgers[c.index()];
        match o {
            RequestOutcome::Completed { latency_s, measured, busy_cycles } => {
                l.displaced_epochs += busy_cycles * epochs_per_busy_cycle;
                if measured {
                    l.completed_requests += 1;
                    samples[c.index()].push(latency_s);
                    if deadline_s.is_some_and(|d| latency_s > d) {
                        l.deadline_misses += 1;
                    }
                }
            }
            RequestOutcome::Shed { .. } => l.shed_requests += 1,
            RequestOutcome::Stranded { missed } => {
                if missed {
                    l.deadline_misses += 1;
                }
            }
        }
    }
    for (l, s) in ledgers.iter_mut().zip(samples) {
        l.latency = LatencyStats::from_samples(s);
    }
    ledgers
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use equinox_arith::Encoding;
    use equinox_isa::lower::InferenceTiming;
    use equinox_isa::training::TrainingProfile;
    use equinox_isa::ArrayDims;
    use equinox_sim::{AcceleratorConfig, FaultScenario};

    /// A small synthetic device: 16-request batches served in 16 µs at
    /// `freq_hz` = 1 GHz (saturation 1 M req/s), optionally co-hosting
    /// a training service whose DRAM appetite stays comfortably inside
    /// the default staging bandwidth.
    pub(crate) fn test_device(name: &str, freq_hz: f64, harvests: bool) -> DeviceSpec {
        let dims = ArrayDims { n: 16, w: 4, m: 4 };
        let config = AcceleratorConfig::new(name, dims, freq_hz, Encoding::Hbfp8);
        let timing = InferenceTiming {
            total_cycles: 16_000,
            mmu_busy_cycles: 12_000,
            mmu_utilization: 0.85,
            stall_cycles: 1_000,
            simd_busy_cycles: 2_000,
            total_macs: 32_000_000,
            macs_per_request: 2_000_000,
            batch: 16,
        };
        let spec = DeviceSpec::new(config, timing);
        if harvests {
            spec.with_training(TrainingProfile {
                iteration_macs: 1_000_000_000,
                iteration_mmu_cycles: 40_000,
                iteration_dram_bytes: 4_000_000,
                iteration_simd_cycles: 4_000,
                batch: 128,
            })
        } else {
            spec
        }
    }

    fn mixed_fleet(n: usize, harvesting: usize) -> Fleet {
        let devices = (0..n)
            .map(|i| test_device(&format!("dev{i}"), 1e9, i >= n - harvesting))
            .collect();
        Fleet::new(devices).unwrap()
    }

    fn opts(policy: RoutingPolicy, load: f64, intervals: u64) -> FleetRunOptions {
        FleetRunOptions {
            source: ArrivalSource::Poisson { load },
            policy,
            admission: AdmissionSpec::AdmitAll,
            autoscale: None,
            paid_fraction: 1.0,
            horizon_cycles: intervals * 16_000,
            seed: 42,
            slo: Some(SloSpec::new(16.0 * 16_000.0 / 1e9).unwrap()),
        }
    }

    #[test]
    fn rejects_empty_fleets_and_burst_scenarios() {
        assert_eq!(Fleet::new(Vec::new()).unwrap_err().kind(), "invalid-argument");
        let bursty = test_device("d0", 1e9, false)
            .with_scenario(FaultScenario::named("burst").with_burst(10, 20, 4.0));
        assert_eq!(Fleet::new(vec![bursty]).unwrap_err().kind(), "fault-model");
    }

    #[test]
    fn single_device_fleet_matches_the_direct_simulation() {
        let fleet = mixed_fleet(1, 0);
        let o = opts(RoutingPolicy::RoundRobin, 0.5, 400);
        let fr = fleet.run(&o).unwrap();
        // Reconstruct the same arrival stream and run the device alone.
        let rate = equinox_sim::loadgen::rate_for_load(
            0.5,
            fleet.devices()[0].max_request_rate_per_s() / 1e9,
        )
        .unwrap();
        let arrivals =
            poisson_arrivals(rate, o.horizon_cycles, split_seed(o.seed, 0)).unwrap();
        let direct = fleet.devices()[0]
            .simulation()
            .unwrap()
            .run_faulted(&arrivals, o.horizon_cycles, &FaultScenario::baseline(), o.slo)
            .unwrap();
        assert_eq!(fr.offered_requests, arrivals.len());
        assert_eq!(fr.devices[0].assigned_requests, arrivals.len());
        assert_eq!(fr.completed_requests(), direct.completed_requests);
        assert_eq!(fr.inference_throughput_ops(), direct.inference_throughput_ops);
        assert_eq!(fr.p99_ms(), direct.p99_ms());
    }

    #[test]
    fn every_offered_request_is_assigned_exactly_once() {
        for policy in RoutingPolicy::all_default() {
            let fleet = mixed_fleet(4, 2);
            let fr = fleet.run(&opts(policy, 0.6, 300)).unwrap();
            let assigned: usize = fr.devices.iter().map(|d| d.assigned_requests).sum();
            assert_eq!(assigned, fr.offered_requests, "{}", policy.name());
            assert!(fr.completed_requests() > 0, "{}", policy.name());
        }
    }

    #[test]
    fn static_bounds_devices_compose_with_cycle_accurate_ones() {
        // Device 1 runs at surrogate fidelity with exact bounds
        // (lower = upper = the nominal service time): the fleet must
        // run, conserve requests, and give the surrogate device
        // latencies in the same range as its cycle-accurate twin.
        let exact = test_device("d1", 1e9, false).timing.total_cycles;
        let devices = vec![
            test_device("d0", 1e9, false),
            test_device("d1", 1e9, false).with_static_bounds(exact, exact),
        ];
        let fleet = Fleet::new(devices).unwrap();
        let fr = fleet.run(&opts(RoutingPolicy::RoundRobin, 0.5, 400)).unwrap();
        let assigned: usize = fr.devices.iter().map(|d| d.assigned_requests).sum();
        assert_eq!(assigned, fr.offered_requests);
        assert!(fr.devices[1].report.completed_requests > 0);
        let p99_accurate = fr.devices[0].report.p99_ms();
        let p99_surrogate = fr.devices[1].report.p99_ms();
        assert!(
            (p99_surrogate - p99_accurate).abs() < 0.5 * p99_accurate,
            "surrogate p99 {p99_surrogate} ms vs engine {p99_accurate} ms"
        );
        assert!(fr.slo_clean(), "{fr}");
    }

    #[test]
    fn surrogate_devices_reject_unmodellable_configurations() {
        let base = || test_device("d0", 1e9, false);
        // Inverted or zero bounds.
        let bad = base().with_static_bounds(0, 100);
        assert_eq!(Fleet::new(vec![bad]).unwrap_err().kind(), "invalid-argument");
        let bad = base().with_static_bounds(200, 100);
        assert_eq!(Fleet::new(vec![bad]).unwrap_err().kind(), "invalid-argument");
        // Faulted surrogate devices.
        let bad = base()
            .with_static_bounds(100, 200)
            .with_scenario(FaultScenario::named("stall").with_stall(10, 20));
        assert_eq!(Fleet::new(vec![bad]).unwrap_err().kind(), "fault-model");
        // Software scheduling under the surrogate.
        let mut bad = base().with_static_bounds(100, 200);
        bad.config.scheduler =
            equinox_sim::SchedulerPolicy::Software { block_cycles: 1_000 };
        assert_eq!(Fleet::new(vec![bad]).unwrap_err().kind(), "invalid-argument");
        // The same configurations are fine at cycle-accurate fidelity.
        let ok = base().with_scenario(FaultScenario::named("stall").with_stall(10, 20));
        assert!(Fleet::new(vec![ok]).is_ok());
    }

    #[test]
    fn reports_are_deterministic() {
        let fleet = mixed_fleet(3, 1);
        let o = opts(RoutingPolicy::PowerOfTwo, 0.5, 300);
        let a = fleet.run(&o).unwrap().to_string();
        let b = fleet.run(&o).unwrap().to_string();
        assert!(!a.is_empty());
        assert_eq!(a, b);
    }

    #[test]
    fn heterogeneous_clocks_compose() {
        let devices = vec![
            test_device("slow", 1e9, false),
            test_device("fast", 2e9, true),
        ];
        let fleet = Fleet::new(devices).unwrap();
        let fr = fleet.run(&opts(RoutingPolicy::LeastOutstanding, 0.7, 400)).unwrap();
        let assigned: usize = fr.devices.iter().map(|d| d.assigned_requests).sum();
        assert_eq!(assigned, fr.offered_requests);
        // The 2 GHz device serves each request in half the time, so
        // least-outstanding work sends it clearly more traffic.
        assert!(
            fr.devices[1].assigned_requests > fr.devices[0].assigned_requests,
            "fast {} vs slow {}",
            fr.devices[1].assigned_requests,
            fr.devices[0].assigned_requests
        );
        assert!(fr.completed_requests() > 0);
    }

    #[test]
    fn training_aware_routing_shields_harvesting_devices() {
        let fleet = mixed_fleet(4, 2);
        let rr = fleet.run(&opts(RoutingPolicy::RoundRobin, 0.6, 400)).unwrap();
        let ta = fleet
            .run(&opts(RoutingPolicy::training_aware_default(), 0.6, 400))
            .unwrap();
        let harvesting_share = |fr: &FleetReport| -> usize {
            fr.devices[2].assigned_requests + fr.devices[3].assigned_requests
        };
        assert!(
            harvesting_share(&ta) < harvesting_share(&rr) / 2,
            "training-aware must steer load off the harvesting devices: \
             {} vs {}",
            harvesting_share(&ta),
            harvesting_share(&rr)
        );
        assert!(
            ta.free_epochs() > rr.free_epochs(),
            "shielded devices must harvest more: {} vs {}",
            ta.free_epochs(),
            rr.free_epochs()
        );
        assert!(ta.slo_clean(), "steering must not violate the SLO: {ta}");
    }

    #[test]
    fn an_interconnect_prices_the_harvest_and_stays_deterministic() {
        let fleet = mixed_fleet(4, 2)
            .with_interconnect(InterconnectSpec::datacenter(1 << 20, 65_536))
            .unwrap();
        let o = opts(RoutingPolicy::training_aware_default(), 0.5, 400);
        let fr = fleet.run(&o).unwrap();
        let s = fr.sync.as_ref().expect("sync report present");
        assert_eq!(s.participants, 2);
        assert!(s.round_cycles > 0);
        assert!(s.raw_free_epochs > 0.0, "{s}");
        assert!(
            s.synced_free_epochs > 0.0 && s.synced_free_epochs < s.raw_free_epochs,
            "synchronization must cost something but not everything: {s}"
        );
        assert!((fr.synced_free_epochs() - s.synced_free_epochs).abs() < 1e-12);
        // one_big_switch over 4 devices: 8 host links reported.
        assert_eq!(s.link_utilization.len(), 8);
        assert!(s.peak_link_utilization > 0.0);
        // Determinism of the rendered report (includes the sync line).
        assert_eq!(fleet.run(&o).unwrap().to_string(), fr.to_string());
        // Without an interconnect, synced falls back to raw.
        let bare = mixed_fleet(4, 2).run(&o).unwrap();
        assert!(bare.sync.is_none());
        assert_eq!(bare.synced_free_epochs(), bare.free_epochs());
        assert_eq!(bare.sync_deadline_misses(), 0);
    }

    #[test]
    fn a_lone_trainer_syncs_for_free_and_bad_specs_reject() {
        let mut spec = InterconnectSpec::datacenter(1 << 20, 65_536);
        let fleet = mixed_fleet(3, 1).with_interconnect(spec.clone()).unwrap();
        let fr = fleet.run(&opts(RoutingPolicy::RoundRobin, 0.4, 300)).unwrap();
        let s = fr.sync.as_ref().unwrap();
        assert_eq!(s.participants, 1);
        assert_eq!(s.round_cycles, 0, "a lone trainer never crosses the fabric");
        assert!((s.synced_free_epochs - s.raw_free_epochs).abs() < 1e-12);
        assert_eq!(s.sync_delay_s, 0.0);
        spec.gradient_bytes = 0;
        assert_eq!(
            mixed_fleet(3, 1).with_interconnect(spec).unwrap_err().kind(),
            "invalid-argument"
        );
    }

    /// A surrogate-fidelity twin of [`test_device`] with exact bounds
    /// (lower = upper = the nominal service time).
    fn surrogate_device(name: &str, harvests: bool) -> DeviceSpec {
        let d = test_device(name, 1e9, harvests);
        let exact = d.timing.total_cycles;
        d.with_static_bounds(exact, exact)
    }

    /// A fitted table fitting [`test_device`]'s timing: a ±25 %
    /// envelope around the nominal service time, mild depth-dependent
    /// stretch, 1 mJ..2 mJ energy.
    fn test_fitted_table() -> std::sync::Arc<crate::fitted::FittedTable> {
        let nominal = 16_000u64;
        let (lower, upper) = (nominal - nominal / 4, nominal + nominal / 4);
        let samples: Vec<equinox_sim::BatchSample> = (0..400)
            .map(|i| {
                let depth = (i % 5) * 16;
                let occ = lower as f64 + ((i * 37) % (upper - lower) as usize) as f64;
                let stretch = 1.0 + 0.5 * (depth as f64 / 64.0).min(1.0);
                equinox_sim::BatchSample {
                    queue_depth: depth,
                    real: 16,
                    start_cycle: 0.0,
                    end_cycle: occ * stretch,
                    occupancy_cycles: occ,
                }
            })
            .collect();
        std::sync::Arc::new(
            crate::fitted::FittedTable::fit(
                "test", 16, lower, upper, 1e-3, 2e-3, vec![16, 48], &samples,
            )
            .unwrap(),
        )
    }

    #[test]
    fn fitted_devices_compose_and_fill_the_harvest_ledgers() {
        let table = test_fitted_table();
        let devices = vec![
            test_device("d0", 1e9, true).with_fitted(table.clone()),
            test_device("d1", 1e9, false).with_fitted(table),
        ];
        let fleet = Fleet::new(devices).unwrap();
        let o = opts(RoutingPolicy::RoundRobin, 0.5, 400);
        let fr = fleet.run(&o).unwrap();
        let assigned: usize = fr.devices.iter().map(|d| d.assigned_requests).sum();
        assert_eq!(assigned, fr.offered_requests);
        assert!(fr.completed_requests() > 0);
        // The fitted tier prices energy; both devices served traffic.
        assert!(fr.devices[0].inference_energy_j > 0.0);
        assert!(fr.devices[1].inference_energy_j > 0.0);
        assert!(fr.inference_energy_j() > 0.0);
        // The harvesting device harvests (co-run + idle credit) and its
        // paid traffic is charged the epochs it displaced; the
        // inference-only device displaces nothing.
        assert!(fr.devices[0].free_epochs > 0.0);
        assert_eq!(fr.devices[1].free_epochs, 0.0);
        let paid = fr.class_ledger(RequestClass::Paid);
        assert!(paid.displaced_epochs > 0.0, "paid traffic on a harvesting device");
        assert_eq!(fr.class_ledger(RequestClass::Free).displaced_epochs, 0.0);
        // Displacement is bounded by what full occupancy of the horizon
        // could have harvested.
        assert!(paid.displaced_epochs < fr.devices[0].free_epochs + paid.displaced_epochs + 1.0);
        // Determinism: same options, same rendered report.
        assert_eq!(fleet.run(&o).unwrap().to_string(), fr.to_string());
    }

    #[test]
    fn fitted_validation_rejects_mismatched_tables() {
        let table = test_fitted_table();
        // Happy path first.
        assert!(Fleet::new(vec![test_device("d0", 1e9, false).with_fitted(table.clone())]).is_ok());
        // Batch mismatch.
        let wrong_batch = std::sync::Arc::new(
            crate::fitted::FittedTable::fit("m", 8, 12_000, 20_000, 0.0, 1.0, vec![], &[])
                .unwrap(),
        );
        let bad = test_device("d0", 1e9, false).with_fitted(wrong_batch);
        assert_eq!(Fleet::new(vec![bad]).unwrap_err().kind(), "invalid-argument");
        // Nominal service time outside the table's envelope.
        let narrow = std::sync::Arc::new(
            crate::fitted::FittedTable::fit("m", 16, 1_000, 2_000, 0.0, 1.0, vec![], &[])
                .unwrap(),
        );
        let bad = test_device("d0", 1e9, false).with_fitted(narrow);
        assert_eq!(Fleet::new(vec![bad]).unwrap_err().kind(), "invalid-argument");
        // Faults and non-shed degradation reject exactly as for the
        // static-bounds tier.
        let bad = test_device("d0", 1e9, false)
            .with_fitted(table.clone())
            .with_scenario(FaultScenario::named("stall").with_stall(10, 20));
        assert_eq!(Fleet::new(vec![bad]).unwrap_err().kind(), "fault-model");
        let mut bad = test_device("d0", 1e9, false).with_fitted(table);
        bad.config.degradation.preempt_training_above = Some(64);
        assert_eq!(Fleet::new(vec![bad]).unwrap_err().kind(), "invalid-argument");
    }

    #[test]
    fn admit_all_defaults_change_nothing_and_fill_the_paid_ledger() {
        let fleet = mixed_fleet(2, 0);
        let fr = fleet.run(&opts(RoutingPolicy::RoundRobin, 0.5, 300)).unwrap();
        assert_eq!(fr.admission, "admit_all");
        assert_eq!(fr.admission_shed_requests, 0);
        assert_eq!(fr.admitted_requests(), fr.offered_requests);
        assert!(fr.scaling_spans.is_empty());
        let paid = fr.class_ledger(RequestClass::Paid);
        let free = fr.class_ledger(RequestClass::Free);
        assert_eq!(paid.offered_requests, fr.offered_requests, "paid_fraction 1.0");
        assert_eq!(free.offered_requests, 0);
        // Cycle-accurate devices cannot attribute completions.
        assert_eq!(paid.unattributed_requests, fr.offered_requests);
    }

    #[test]
    fn run_validates_serving_options() {
        let fleet = mixed_fleet(2, 0);
        let mut o = opts(RoutingPolicy::RoundRobin, 0.5, 50);
        o.paid_fraction = 1.5;
        assert_eq!(fleet.run(&o).unwrap_err().kind(), "invalid-argument");
        let mut o = opts(RoutingPolicy::RoundRobin, 0.5, 50);
        o.admission = AdmissionSpec::TokenBucket { rate_x: 0.0, burst_batches: 4.0 };
        assert_eq!(fleet.run(&o).unwrap_err().kind(), "invalid-argument");
        let mut o = opts(RoutingPolicy::RoundRobin, 0.5, 50);
        o.autoscale = Some(AutoscalePolicy {
            min_devices: 3, // > fleet size
            initial_devices: 3,
            up_backlog_batches: 2.0,
            down_backlog_batches: 0.5,
            sustain_s: 1e-4,
            drain_grace_s: 1e-4,
        });
        assert_eq!(fleet.run(&o).unwrap_err().kind(), "invalid-argument");
    }

    #[test]
    fn surrogates_accept_shed_only_degradation() {
        // Shed-only degradation on a surrogate device is modelled
        // honestly (satellite of the serving-layer PR); any other
        // lever still rejects.
        let mut ok = surrogate_device("d0", false);
        ok.config.degradation.shed_above = Some(64);
        assert!(Fleet::new(vec![ok]).is_ok());
        let mut bad = surrogate_device("d0", false);
        bad.config.degradation.preempt_training_above = Some(64);
        assert_eq!(Fleet::new(vec![bad]).unwrap_err().kind(), "invalid-argument");
    }

    #[test]
    fn token_bucket_bounds_overload_and_conserves_requests() {
        let devices =
            vec![surrogate_device("d0", false), surrogate_device("d1", false)];
        let fleet = Fleet::new(devices).unwrap();
        let mut o = opts(RoutingPolicy::LeastOutstanding, 1.5, 600);
        o.admission = AdmissionSpec::token_bucket_default();
        let fr = fleet.run(&o).unwrap();
        assert!(fr.admission_shed_requests > 0, "1.5× overload must shed at the edge");
        let assigned: usize = fr.devices.iter().map(|d| d.assigned_requests).sum();
        assert_eq!(assigned + fr.admission_shed_requests, fr.offered_requests);
        // Zero in-flight loss: every admitted request is completed,
        // device-shed, or still queued at the horizon.
        for d in &fr.devices {
            let slo = d.report.slo.as_ref().unwrap();
            assert_eq!(
                d.report.completed_requests as usize
                    + d.report.shed_requests as usize
                    + slo.final_queue_depth,
                d.assigned_requests,
                "{}",
                d.name
            );
        }
        // The admitted stream is capped near 95 % of capacity, so the
        // queues stay bounded where admit-all would grow without bound.
        let admit_all = fleet.run(&opts(RoutingPolicy::LeastOutstanding, 1.5, 600)).unwrap();
        let final_queue = |fr: &FleetReport| -> usize {
            fr.devices
                .iter()
                .map(|d| d.report.slo.as_ref().unwrap().final_queue_depth)
                .sum()
        };
        assert!(
            final_queue(&fr) < final_queue(&admit_all) / 4,
            "token bucket {} vs admit-all {}",
            final_queue(&fr),
            final_queue(&admit_all)
        );
    }

    #[test]
    fn priority_admission_sheds_free_before_paid() {
        let devices = vec![
            surrogate_device("d0", false),
            surrogate_device("d1", false),
            surrogate_device("d2", true),
            surrogate_device("d3", true),
        ];
        let fleet = Fleet::new(devices).unwrap();
        let mut o = opts(RoutingPolicy::training_aware_default(), 1.3, 600);
        o.admission = AdmissionSpec::priority_default();
        o.paid_fraction = 0.6;
        let fr = fleet.run(&o).unwrap();
        let paid = fr.class_ledger(RequestClass::Paid);
        let free = fr.class_ledger(RequestClass::Free);
        assert!(paid.offered_requests > 0 && free.offered_requests > 0);
        assert!(free.shed_requests > 0, "overload must shed the free tier");
        assert!(
            free.shed_rate() > 4.0 * paid.shed_rate(),
            "free shed rate {:.3} must dominate paid {:.3}",
            free.shed_rate(),
            paid.shed_rate()
        );
        // Attributed paid completions exist and carry a latency tail.
        assert!(paid.completed_requests > 0);
        assert!(paid.p999_s() > 0.0);
        // Class-ledger sanity: attributed fates never exceed what was
        // offered (completions inside the warmup window are measured
        // nowhere, so the identity is an inequality, not an equality).
        for l in [paid, free] {
            assert!(
                l.shed_requests + l.completed_requests + l.unattributed_requests
                    <= l.offered_requests,
                "{} ledger overflows its offered count",
                l.class.name()
            );
        }
    }

    #[test]
    fn trace_source_with_autoscale_joins_drains_and_loses_nothing() {
        let devices = vec![
            surrogate_device("d0", false),
            surrogate_device("d1", false),
            surrogate_device("d2", true),
        ];
        let fleet = Fleet::new(devices).unwrap();
        let horizon_s = 4_000.0 * 16_000.0 / 1e9;
        let o = FleetRunOptions {
            source: ArrivalSource::Trace {
                profile: DiurnalProfile { trough: 0.10, peak: 0.55 },
                rate_scale: 1.0,
                crowd: FlashCrowd { start_frac: 0.55, duration_frac: 0.1, multiplier: 3.0 },
            },
            policy: RoutingPolicy::LeastOutstanding,
            admission: AdmissionSpec::AdmitAll,
            autoscale: Some(AutoscalePolicy {
                min_devices: 1,
                initial_devices: 1,
                up_backlog_batches: 1.0,
                down_backlog_batches: 0.125,
                sustain_s: horizon_s / 200.0,
                drain_grace_s: horizon_s / 100.0,
            }),
            paid_fraction: 0.8,
            horizon_cycles: 4_000 * 16_000,
            seed: 42,
            slo: Some(SloSpec::new(16.0 * 16_000.0 / 1e9).unwrap()),
        };
        let fr = fleet.run(&o).unwrap();
        let joins =
            fr.scaling_spans.iter().filter(|s| s.kind == crate::autoscale::ScalingKind::Join);
        let drains =
            fr.scaling_spans.iter().filter(|s| s.kind == crate::autoscale::ScalingKind::Drain);
        assert!(joins.count() >= 1, "the midday crowd must trigger a join: {fr}");
        assert!(drains.count() >= 1, "the night trough must trigger a drain: {fr}");
        assert!(
            fr.scaling_spans.windows(2).all(|w| w[0].t_s <= w[1].t_s),
            "spans are in time order"
        );
        // Drain-never-drop: every admitted request is accounted for on
        // its device — completed, device-shed, or queued at horizon.
        let assigned: usize = fr.devices.iter().map(|d| d.assigned_requests).sum();
        assert_eq!(assigned + fr.admission_shed_requests, fr.offered_requests);
        for d in &fr.devices {
            let slo = d.report.slo.as_ref().unwrap();
            assert_eq!(
                d.report.completed_requests as usize
                    + d.report.shed_requests as usize
                    + slo.final_queue_depth,
                d.assigned_requests,
                "in-flight loss on {}",
                d.name
            );
        }
        // Determinism: the exact same options reproduce the report.
        assert_eq!(fleet.run(&o).unwrap().to_string(), fr.to_string());
    }

    #[test]
    fn diurnal_traffic_follows_the_day() {
        let fleet = mixed_fleet(2, 1);
        let o = FleetRunOptions {
            source: ArrivalSource::Diurnal {
                profile: DiurnalProfile::thirty_percent_average(),
            },
            policy: RoutingPolicy::LeastOutstanding,
            admission: AdmissionSpec::AdmitAll,
            autoscale: None,
            paid_fraction: 1.0,
            horizon_cycles: 2_000 * 16_000,
            seed: 7,
            slo: None,
        };
        let fr = fleet.run(&o).unwrap();
        assert!(fr.offered_requests > 0);
        let assigned: usize = fr.devices.iter().map(|d| d.assigned_requests).sum();
        assert_eq!(assigned, fr.offered_requests);
    }
}

