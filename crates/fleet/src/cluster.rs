//! The fleet itself: one arrival stream in, one [`FleetReport`] out.
//!
//! A run has three stages. First the front end draws the fleet-wide
//! arrival stream (Poisson or diurnal, reusing `equinox_sim::loadgen`)
//! on the *reference clock* — device 0's — and routes every request in
//! one serial pass (see [`crate::routing`]). Then each device
//! simulates its share of the traffic with the full `equinox-sim`
//! event engine, concurrently on the `equinox-par` pool; timestamps
//! are rescaled to each device's own clock, so heterogeneous-frequency
//! fleets compose. Finally the per-device reports are merged in device
//! index order into a [`FleetReport`] — byte-identical at any thread
//! count.

use crate::device::{DeviceSpec, Fidelity};
use crate::report::{free_epochs, DeviceOutcome, FleetReport};
use crate::routing::{Router, RoutingPolicy};
use crate::surrogate;
use equinox_isa::EquinoxError;
use equinox_sim::loadgen::{diurnal_arrivals, poisson_arrivals, split_seed, DiurnalProfile};
use equinox_sim::{LatencyStats, SchedulerPolicy, SimReport, SloSpec};

/// Where the fleet's request traffic comes from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalSource {
    /// Homogeneous Poisson traffic at `load ×` the fleet's aggregate
    /// saturation rate.
    Poisson {
        /// Offered load as a fraction of aggregate fleet saturation.
        load: f64,
    },
    /// Non-homogeneous Poisson traffic following a diurnal profile over
    /// one simulated "day" (the horizon), with the profile's load
    /// fractions applied to the aggregate fleet saturation rate.
    Diurnal {
        /// The day's load profile.
        profile: DiurnalProfile,
    },
}

/// Parameters of one fleet run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetRunOptions {
    /// The traffic source.
    pub source: ArrivalSource,
    /// The routing policy.
    pub policy: RoutingPolicy,
    /// Horizon in reference-clock cycles (device 0's clock).
    pub horizon_cycles: u64,
    /// Master seed; every random stream derives from it via
    /// [`split_seed`] (see the crate docs for the stream map).
    pub seed: u64,
    /// Per-request deadline every device is held against, if any.
    pub slo: Option<SloSpec>,
}

/// A set of devices behind one request router.
#[derive(Debug, Clone)]
pub struct Fleet {
    devices: Vec<DeviceSpec>,
}

impl Fleet {
    /// Builds a fleet.
    ///
    /// # Errors
    ///
    /// [`EquinoxError::InvalidArgument`] if `devices` is empty, and
    /// [`EquinoxError::FaultModel`] if a device scenario carries
    /// traffic bursts — fleet traffic enters only through the router,
    /// so per-device burst injection would bypass the policy under
    /// study (throttles, stalls, and corruption are device-local and
    /// fine).
    pub fn new(devices: Vec<DeviceSpec>) -> Result<Self, EquinoxError> {
        if devices.is_empty() {
            return Err(EquinoxError::invalid_argument(
                "Fleet::new",
                "a fleet needs at least one device",
            ));
        }
        if let Some(d) = devices.iter().find(|d| !d.scenario.bursts.is_empty()) {
            return Err(EquinoxError::fault_model(
                d.scenario.name.clone(),
                "device scenarios must not inject burst traffic; fleet \
                 traffic enters through the router (use a Poisson or \
                 diurnal source instead)",
            ));
        }
        // Static-bounds surrogate devices: the bounds must be a valid
        // interval, and the surrogate models neither faults, software
        // scheduling, nor degradation — reject combinations whose
        // answer it could not stand behind.
        for d in &devices {
            let Fidelity::StaticBounds { lower_cycles, upper_cycles } = d.fidelity else {
                continue;
            };
            if lower_cycles == 0 || lower_cycles > upper_cycles {
                return Err(EquinoxError::invalid_argument(
                    "Fleet::new",
                    "static-bounds fidelity needs 0 < lower_cycles ≤ upper_cycles",
                ));
            }
            if !d.scenario.is_fault_free() {
                return Err(EquinoxError::fault_model(
                    d.scenario.name.clone(),
                    "the static-bounds surrogate cannot model injected \
                     faults; use cycle-accurate fidelity for faulted \
                     devices",
                ));
            }
            if matches!(d.config.scheduler, SchedulerPolicy::Software { .. })
                || !d.config.degradation.is_none()
            {
                return Err(EquinoxError::invalid_argument(
                    "Fleet::new",
                    "the static-bounds surrogate models only the \
                     hardware schedulers without degradation; use \
                     cycle-accurate fidelity",
                ));
            }
        }
        Ok(Fleet { devices })
    }

    /// The device specifications, in index order.
    pub fn devices(&self) -> &[DeviceSpec] {
        &self.devices
    }

    /// Aggregate saturation request rate of the fleet, requests/s.
    pub fn max_request_rate_per_s(&self) -> f64 {
        self.devices.iter().map(DeviceSpec::max_request_rate_per_s).sum()
    }

    /// The reference clock (device 0's), Hz.
    pub fn reference_freq_hz(&self) -> f64 {
        self.devices[0].config.freq_hz
    }

    /// Runs the fleet (see the module docs for the three stages).
    ///
    /// # Errors
    ///
    /// Propagates load-generation and per-device simulation errors
    /// ([`EquinoxError::InvalidArgument`], [`EquinoxError::FaultModel`]);
    /// the first failing device (by index) wins, deterministically.
    pub fn run(&self, opts: &FleetRunOptions) -> Result<FleetReport, EquinoxError> {
        let freq_ref = self.reference_freq_hz();
        let fleet_rate_per_cycle = self.max_request_rate_per_s() / freq_ref;
        let arrival_seed = split_seed(opts.seed, 0);
        let arrivals = match opts.source {
            ArrivalSource::Poisson { load } => {
                let rate = equinox_sim::loadgen::rate_for_load(load, fleet_rate_per_cycle)?;
                poisson_arrivals(rate, opts.horizon_cycles, arrival_seed)?
            }
            ArrivalSource::Diurnal { profile } => {
                diurnal_arrivals(&profile, fleet_rate_per_cycle, opts.horizon_cycles, arrival_seed)?
            }
        };

        // Stage 1: route the merged stream in one serial pass, binning
        // arrivals per device on each device's own clock. Both maps are
        // monotone, so per-device streams stay sorted and inside the
        // device's horizon.
        let mut router = Router::new(&self.devices, opts.policy, split_seed(opts.seed, 1));
        let mut per_device: Vec<Vec<u64>> = vec![Vec::new(); self.devices.len()];
        for &t in &arrivals {
            let d = router.route(t as f64 / freq_ref);
            let scale = self.devices[d].config.freq_hz / freq_ref;
            let t_local = if scale == 1.0 { t } else { (t as f64 * scale) as u64 };
            per_device[d].push(t_local);
        }

        // Stage 2: per-device simulations, concurrent and index-merged.
        let assigned: Vec<usize> = per_device.iter().map(Vec::len).collect();
        let work: Vec<(usize, Vec<u64>)> = per_device.into_iter().enumerate().collect();
        let reports: Vec<Result<SimReport, EquinoxError>> =
            equinox_par::parallel_map(work, |(i, device_arrivals)| {
                let spec = &self.devices[i];
                let scale = spec.config.freq_hz / freq_ref;
                let horizon = if scale == 1.0 {
                    opts.horizon_cycles
                } else {
                    (opts.horizon_cycles as f64 * scale).ceil() as u64
                };
                match spec.fidelity {
                    Fidelity::CycleAccurate => spec.simulation()?.run_faulted(
                        &device_arrivals,
                        horizon,
                        &spec.scenario,
                        opts.slo,
                    ),
                    Fidelity::StaticBounds { upper_cycles, .. } => Ok(
                        surrogate::run_static_bounds(
                            spec,
                            upper_cycles,
                            &device_arrivals,
                            horizon,
                            opts.slo,
                        ),
                    ),
                }
            });

        // Stage 3: merge in device-index order.
        let mut devices = Vec::with_capacity(self.devices.len());
        for ((spec, report), assigned) in self.devices.iter().zip(reports).zip(assigned) {
            let report = report?;
            devices.push(DeviceOutcome {
                name: spec.config.name.clone(),
                assigned_requests: assigned,
                free_epochs: free_epochs(&report, spec.training.as_ref()),
                report,
            });
        }
        Ok(FleetReport {
            policy: opts.policy.name(),
            horizon_cycles: opts.horizon_cycles,
            freq_hz: freq_ref,
            offered_requests: arrivals.len(),
            latency: LatencyStats::merged(devices.iter().map(|d| &d.report.latency)),
            devices,
        })
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use equinox_arith::Encoding;
    use equinox_isa::lower::InferenceTiming;
    use equinox_isa::training::TrainingProfile;
    use equinox_isa::ArrayDims;
    use equinox_sim::{AcceleratorConfig, FaultScenario};

    /// A small synthetic device: 16-request batches served in 16 µs at
    /// `freq_hz` = 1 GHz (saturation 1 M req/s), optionally co-hosting
    /// a training service whose DRAM appetite stays comfortably inside
    /// the default staging bandwidth.
    pub(crate) fn test_device(name: &str, freq_hz: f64, harvests: bool) -> DeviceSpec {
        let dims = ArrayDims { n: 16, w: 4, m: 4 };
        let config = AcceleratorConfig::new(name, dims, freq_hz, Encoding::Hbfp8);
        let timing = InferenceTiming {
            total_cycles: 16_000,
            mmu_busy_cycles: 12_000,
            mmu_utilization: 0.85,
            stall_cycles: 1_000,
            simd_busy_cycles: 2_000,
            total_macs: 32_000_000,
            macs_per_request: 2_000_000,
            batch: 16,
        };
        let spec = DeviceSpec::new(config, timing);
        if harvests {
            spec.with_training(TrainingProfile {
                iteration_macs: 1_000_000_000,
                iteration_mmu_cycles: 40_000,
                iteration_dram_bytes: 4_000_000,
                iteration_simd_cycles: 4_000,
                batch: 128,
            })
        } else {
            spec
        }
    }

    fn mixed_fleet(n: usize, harvesting: usize) -> Fleet {
        let devices = (0..n)
            .map(|i| test_device(&format!("dev{i}"), 1e9, i >= n - harvesting))
            .collect();
        Fleet::new(devices).unwrap()
    }

    fn opts(policy: RoutingPolicy, load: f64, intervals: u64) -> FleetRunOptions {
        FleetRunOptions {
            source: ArrivalSource::Poisson { load },
            policy,
            horizon_cycles: intervals * 16_000,
            seed: 42,
            slo: Some(SloSpec::new(16.0 * 16_000.0 / 1e9).unwrap()),
        }
    }

    #[test]
    fn rejects_empty_fleets_and_burst_scenarios() {
        assert_eq!(Fleet::new(Vec::new()).unwrap_err().kind(), "invalid-argument");
        let bursty = test_device("d0", 1e9, false)
            .with_scenario(FaultScenario::named("burst").with_burst(10, 20, 4.0));
        assert_eq!(Fleet::new(vec![bursty]).unwrap_err().kind(), "fault-model");
    }

    #[test]
    fn single_device_fleet_matches_the_direct_simulation() {
        let fleet = mixed_fleet(1, 0);
        let o = opts(RoutingPolicy::RoundRobin, 0.5, 400);
        let fr = fleet.run(&o).unwrap();
        // Reconstruct the same arrival stream and run the device alone.
        let rate = equinox_sim::loadgen::rate_for_load(
            0.5,
            fleet.devices()[0].max_request_rate_per_s() / 1e9,
        )
        .unwrap();
        let arrivals =
            poisson_arrivals(rate, o.horizon_cycles, split_seed(o.seed, 0)).unwrap();
        let direct = fleet.devices()[0]
            .simulation()
            .unwrap()
            .run_faulted(&arrivals, o.horizon_cycles, &FaultScenario::baseline(), o.slo)
            .unwrap();
        assert_eq!(fr.offered_requests, arrivals.len());
        assert_eq!(fr.devices[0].assigned_requests, arrivals.len());
        assert_eq!(fr.completed_requests(), direct.completed_requests);
        assert_eq!(fr.inference_throughput_ops(), direct.inference_throughput_ops);
        assert_eq!(fr.p99_ms(), direct.p99_ms());
    }

    #[test]
    fn every_offered_request_is_assigned_exactly_once() {
        for policy in RoutingPolicy::all_default() {
            let fleet = mixed_fleet(4, 2);
            let fr = fleet.run(&opts(policy, 0.6, 300)).unwrap();
            let assigned: usize = fr.devices.iter().map(|d| d.assigned_requests).sum();
            assert_eq!(assigned, fr.offered_requests, "{}", policy.name());
            assert!(fr.completed_requests() > 0, "{}", policy.name());
        }
    }

    #[test]
    fn static_bounds_devices_compose_with_cycle_accurate_ones() {
        // Device 1 runs at surrogate fidelity with exact bounds
        // (lower = upper = the nominal service time): the fleet must
        // run, conserve requests, and give the surrogate device
        // latencies in the same range as its cycle-accurate twin.
        let exact = test_device("d1", 1e9, false).timing.total_cycles;
        let devices = vec![
            test_device("d0", 1e9, false),
            test_device("d1", 1e9, false).with_static_bounds(exact, exact),
        ];
        let fleet = Fleet::new(devices).unwrap();
        let fr = fleet.run(&opts(RoutingPolicy::RoundRobin, 0.5, 400)).unwrap();
        let assigned: usize = fr.devices.iter().map(|d| d.assigned_requests).sum();
        assert_eq!(assigned, fr.offered_requests);
        assert!(fr.devices[1].report.completed_requests > 0);
        let p99_accurate = fr.devices[0].report.p99_ms();
        let p99_surrogate = fr.devices[1].report.p99_ms();
        assert!(
            (p99_surrogate - p99_accurate).abs() < 0.5 * p99_accurate,
            "surrogate p99 {p99_surrogate} ms vs engine {p99_accurate} ms"
        );
        assert!(fr.slo_clean(), "{fr}");
    }

    #[test]
    fn surrogate_devices_reject_unmodellable_configurations() {
        let base = || test_device("d0", 1e9, false);
        // Inverted or zero bounds.
        let bad = base().with_static_bounds(0, 100);
        assert_eq!(Fleet::new(vec![bad]).unwrap_err().kind(), "invalid-argument");
        let bad = base().with_static_bounds(200, 100);
        assert_eq!(Fleet::new(vec![bad]).unwrap_err().kind(), "invalid-argument");
        // Faulted surrogate devices.
        let bad = base()
            .with_static_bounds(100, 200)
            .with_scenario(FaultScenario::named("stall").with_stall(10, 20));
        assert_eq!(Fleet::new(vec![bad]).unwrap_err().kind(), "fault-model");
        // Software scheduling under the surrogate.
        let mut bad = base().with_static_bounds(100, 200);
        bad.config.scheduler =
            equinox_sim::SchedulerPolicy::Software { block_cycles: 1_000 };
        assert_eq!(Fleet::new(vec![bad]).unwrap_err().kind(), "invalid-argument");
        // The same configurations are fine at cycle-accurate fidelity.
        let ok = base().with_scenario(FaultScenario::named("stall").with_stall(10, 20));
        assert!(Fleet::new(vec![ok]).is_ok());
    }

    #[test]
    fn reports_are_deterministic() {
        let fleet = mixed_fleet(3, 1);
        let o = opts(RoutingPolicy::PowerOfTwo, 0.5, 300);
        let a = fleet.run(&o).unwrap().to_string();
        let b = fleet.run(&o).unwrap().to_string();
        assert!(!a.is_empty());
        assert_eq!(a, b);
    }

    #[test]
    fn heterogeneous_clocks_compose() {
        let devices = vec![
            test_device("slow", 1e9, false),
            test_device("fast", 2e9, true),
        ];
        let fleet = Fleet::new(devices).unwrap();
        let fr = fleet.run(&opts(RoutingPolicy::LeastOutstanding, 0.7, 400)).unwrap();
        let assigned: usize = fr.devices.iter().map(|d| d.assigned_requests).sum();
        assert_eq!(assigned, fr.offered_requests);
        // The 2 GHz device serves each request in half the time, so
        // least-outstanding work sends it clearly more traffic.
        assert!(
            fr.devices[1].assigned_requests > fr.devices[0].assigned_requests,
            "fast {} vs slow {}",
            fr.devices[1].assigned_requests,
            fr.devices[0].assigned_requests
        );
        assert!(fr.completed_requests() > 0);
    }

    #[test]
    fn training_aware_routing_shields_harvesting_devices() {
        let fleet = mixed_fleet(4, 2);
        let rr = fleet.run(&opts(RoutingPolicy::RoundRobin, 0.6, 400)).unwrap();
        let ta = fleet
            .run(&opts(RoutingPolicy::training_aware_default(), 0.6, 400))
            .unwrap();
        let harvesting_share = |fr: &FleetReport| -> usize {
            fr.devices[2].assigned_requests + fr.devices[3].assigned_requests
        };
        assert!(
            harvesting_share(&ta) < harvesting_share(&rr) / 2,
            "training-aware must steer load off the harvesting devices: \
             {} vs {}",
            harvesting_share(&ta),
            harvesting_share(&rr)
        );
        assert!(
            ta.free_epochs() > rr.free_epochs(),
            "shielded devices must harvest more: {} vs {}",
            ta.free_epochs(),
            rr.free_epochs()
        );
        assert!(ta.slo_clean(), "steering must not violate the SLO: {ta}");
    }

    #[test]
    fn diurnal_traffic_follows_the_day() {
        let fleet = mixed_fleet(2, 1);
        let o = FleetRunOptions {
            source: ArrivalSource::Diurnal {
                profile: DiurnalProfile::thirty_percent_average(),
            },
            policy: RoutingPolicy::LeastOutstanding,
            horizon_cycles: 2_000 * 16_000,
            seed: 7,
            slo: None,
        };
        let fr = fleet.run(&o).unwrap();
        assert!(fr.offered_requests > 0);
        let assigned: usize = fr.devices.iter().map(|d| d.assigned_requests).sum();
        assert_eq!(assigned, fr.offered_requests);
    }
}

