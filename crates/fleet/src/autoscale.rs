//! Reactive fleet autoscaling with drain-on-departure.
//!
//! The autoscaler watches the router's fluid backlog estimates during
//! the serial routing pass and adjusts the *active set* — the devices
//! the router may pick from. Devices join on sustained backlog and
//! leave on sustained idleness, with two production disciplines:
//!
//! - **Drain, never drop.** A departing device is only removed from
//!   the active set; every request already dispatched to it still
//!   simulates to the horizon. Scale-down therefore loses zero
//!   in-flight requests by construction — the gated `serve` sweep
//!   asserts the conservation identity rather than trusting it.
//! - **Grace between transitions.** After a departure the autoscaler
//!   holds all transitions for `drain_grace_s`, giving the drained
//!   queue time to clear before capacity is judged again (and giving
//!   check lint EQX0702 something concrete to hold the grace against).
//!
//! An inactive device serves no inference, so a harvesting device that
//! scales out of the serving set hands its whole horizon to training:
//! scale-down is how a fleet converts a quiet diurnal trough into free
//! epochs. Every transition is recorded as a [`ScalingSpan`] in the
//! [`FleetReport`](crate::FleetReport).

use crate::device::DeviceSpec;
use equinox_isa::EquinoxError;

/// Reactive autoscaling parameters for one fleet run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoscalePolicy {
    /// The active set never shrinks below this many devices.
    pub min_devices: usize,
    /// Devices active at t = 0 (clamped to the fleet size; the rest
    /// start drained and may join on demand).
    pub initial_devices: usize,
    /// Scale up when the mean active backlog sustains at or above this
    /// many batch service times.
    pub up_backlog_batches: f64,
    /// Scale down when the mean active backlog sustains at or below
    /// this many batch service times.
    pub down_backlog_batches: f64,
    /// How long a threshold crossing must sustain before acting,
    /// seconds.
    pub sustain_s: f64,
    /// Hold-down after a departure, seconds: no further transitions
    /// while the drained queue clears.
    pub drain_grace_s: f64,
}

impl AutoscalePolicy {
    /// Validates the parameters against a fleet of `n_devices`.
    ///
    /// # Errors
    ///
    /// [`EquinoxError::InvalidArgument`] if the thresholds are
    /// inverted (`down ≥ up`), non-finite or negative, the sustain or
    /// grace windows are non-finite or non-positive/negative, or the
    /// device counts are zero or exceed the fleet.
    pub fn validate(&self, n_devices: usize) -> Result<(), EquinoxError> {
        let fail = |msg: String| Err(EquinoxError::invalid_argument("AutoscalePolicy", msg));
        if self.min_devices == 0 || self.min_devices > n_devices {
            return fail(format!(
                "min_devices must be in 1..={n_devices}, got {}",
                self.min_devices
            ));
        }
        if self.initial_devices < self.min_devices {
            return fail(format!(
                "initial_devices {} below min_devices {}",
                self.initial_devices, self.min_devices
            ));
        }
        for (what, v) in
            [("up_backlog_batches", self.up_backlog_batches), ("down_backlog_batches", self.down_backlog_batches)]
        {
            if !v.is_finite() || v < 0.0 {
                return fail(format!("{what} must be finite and non-negative, got {v}"));
            }
        }
        if self.down_backlog_batches >= self.up_backlog_batches {
            return fail(format!(
                "thresholds inverted: down {} must be below up {}",
                self.down_backlog_batches, self.up_backlog_batches
            ));
        }
        if !self.sustain_s.is_finite() || self.sustain_s <= 0.0 {
            return fail(format!("sustain_s must be finite and positive, got {}", self.sustain_s));
        }
        if !self.drain_grace_s.is_finite() || self.drain_grace_s < 0.0 {
            return fail(format!(
                "drain_grace_s must be finite and non-negative, got {}",
                self.drain_grace_s
            ));
        }
        Ok(())
    }
}

/// The direction of one scaling transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalingKind {
    /// The device joined the active serving set.
    Join,
    /// The device left the active set and began draining its queue.
    Drain,
}

impl ScalingKind {
    /// Stable identifier used in sweep artifacts.
    pub fn name(self) -> &'static str {
        match self {
            ScalingKind::Join => "join",
            ScalingKind::Drain => "drain",
        }
    }
}

/// One autoscaling transition, recorded in the fleet report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingSpan {
    /// The device that joined or drained.
    pub device: usize,
    /// Join or drain.
    pub kind: ScalingKind,
    /// When the transition happened, reference-clock seconds.
    pub t_s: f64,
}

/// The autoscaler's mutable state across the serial routing pass.
pub(crate) struct Autoscaler {
    policy: AutoscalePolicy,
    active: Vec<bool>,
    /// Ascending indices of the active devices (the routing pick set).
    active_list: Vec<usize>,
    /// When the backlog first crossed the scale-up threshold.
    over_since: Option<f64>,
    /// When the backlog first crossed the scale-down threshold.
    under_since: Option<f64>,
    /// No transitions before this instant (drain grace).
    hold_until: f64,
    spans: Vec<ScalingSpan>,
}

impl Autoscaler {
    pub(crate) fn new(policy: AutoscalePolicy, n_devices: usize) -> Self {
        let initial = policy.initial_devices.min(n_devices);
        Autoscaler {
            policy,
            active: (0..n_devices).map(|d| d < initial).collect(),
            active_list: (0..initial).collect(),
            over_since: None,
            under_since: None,
            hold_until: 0.0,
            spans: Vec::new(),
        }
    }

    /// The current active set, ascending.
    pub(crate) fn active_list(&self) -> &[usize] {
        &self.active_list
    }

    /// The transitions taken so far, in time order.
    pub(crate) fn into_spans(self) -> Vec<ScalingSpan> {
        self.spans
    }

    /// Observes the router state at one arrival and applies at most one
    /// transition. `backlog_s` is the router's fluid estimate per
    /// device (already decayed to `t_s`).
    pub(crate) fn step(&mut self, t_s: f64, backlog_s: &[f64], devices: &[DeviceSpec]) {
        // Mean active backlog in batch service times, so heterogeneous
        // devices vote in comparable units.
        let mean_batches = self
            .active_list
            .iter()
            .map(|&d| backlog_s[d] / devices[d].service_time_s())
            .sum::<f64>()
            / self.active_list.len() as f64;

        if mean_batches >= self.policy.up_backlog_batches {
            self.under_since = None;
            let since = *self.over_since.get_or_insert(t_s);
            if t_s >= self.hold_until
                && t_s - since >= self.policy.sustain_s
                && self.active_list.len() < self.active.len()
            {
                let joiner = (0..self.active.len())
                    .find(|&d| !self.active[d])
                    .expect("an inactive device exists");
                self.active[joiner] = true;
                let pos = self.active_list.partition_point(|&d| d < joiner);
                self.active_list.insert(pos, joiner);
                self.spans.push(ScalingSpan { device: joiner, kind: ScalingKind::Join, t_s });
                self.over_since = None;
            }
        } else if mean_batches <= self.policy.down_backlog_batches {
            self.over_since = None;
            let since = *self.under_since.get_or_insert(t_s);
            if t_s >= self.hold_until
                && t_s - since >= self.policy.sustain_s
                && self.active_list.len() > self.policy.min_devices
            {
                // Drain the highest-indexed active device: joins fill
                // from the bottom, so the set stays a stable prefix
                // plus recent joiners.
                let leaver = *self.active_list.last().expect("active set is non-empty");
                self.active[leaver] = false;
                self.active_list.pop();
                self.spans.push(ScalingSpan { device: leaver, kind: ScalingKind::Drain, t_s });
                self.under_since = None;
                self.hold_until = t_s + self.policy.drain_grace_s;
            }
        } else {
            self.over_since = None;
            self.under_since = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::tests::test_device;

    fn policy() -> AutoscalePolicy {
        AutoscalePolicy {
            min_devices: 1,
            initial_devices: 2,
            up_backlog_batches: 2.0,
            down_backlog_batches: 0.25,
            sustain_s: 1e-4,
            drain_grace_s: 2e-4,
        }
    }

    fn fleet(n: usize) -> Vec<DeviceSpec> {
        (0..n).map(|i| test_device(&format!("d{i}"), 1e9, false)).collect()
    }

    #[test]
    fn validate_rejects_degenerate_policies() {
        let devices = 4;
        assert!(policy().validate(devices).is_ok());
        for (bad, what) in [
            (AutoscalePolicy { min_devices: 0, ..policy() }, "zero min"),
            (AutoscalePolicy { min_devices: 5, ..policy() }, "min past fleet"),
            (AutoscalePolicy { initial_devices: 0, ..policy() }, "initial below min"),
            (
                AutoscalePolicy { down_backlog_batches: 2.5, ..policy() },
                "inverted thresholds",
            ),
            (AutoscalePolicy { sustain_s: 0.0, ..policy() }, "zero sustain"),
            (AutoscalePolicy { drain_grace_s: -1.0, ..policy() }, "negative grace"),
            (AutoscalePolicy { up_backlog_batches: f64::NAN, ..policy() }, "NaN up"),
        ] {
            assert_eq!(bad.validate(devices).unwrap_err().kind(), "invalid-argument", "{what}");
        }
    }

    #[test]
    fn sustained_backlog_joins_and_sustained_idle_drains() {
        let devices = fleet(3);
        let service = devices[0].service_time_s();
        let mut a = Autoscaler::new(policy(), 3);
        assert_eq!(a.active_list(), [0, 1]);
        // Heavy backlog (4 service times each) sustained past the
        // window: device 2 joins.
        let heavy = [4.0 * service; 3];
        a.step(0.0, &heavy, &devices);
        assert_eq!(a.active_list(), [0, 1], "not sustained yet");
        a.step(2e-4, &heavy, &devices);
        assert_eq!(a.active_list(), [0, 1, 2], "sustained backlog joins");
        // Idle sustained past the window: device 2 drains again.
        let idle = [0.0; 3];
        a.step(4e-4, &idle, &devices);
        a.step(6e-4, &idle, &devices);
        assert_eq!(a.active_list(), [0, 1], "sustained idle drains");
        // And further down to the floor, after the drain grace.
        a.step(1e-3, &idle, &devices);
        a.step(2e-3, &idle, &devices);
        assert_eq!(a.active_list(), [0], "drains to min_devices");
        a.step(4e-3, &idle, &devices);
        a.step(8e-3, &idle, &devices);
        assert_eq!(a.active_list(), [0], "never below min_devices");
        let spans = a.into_spans();
        let kinds: Vec<&str> = spans.iter().map(|s| s.kind.name()).collect();
        assert_eq!(kinds, ["join", "drain", "drain"]);
        assert_eq!(spans[0].device, 2);
        assert!(spans.windows(2).all(|w| w[0].t_s <= w[1].t_s), "spans in time order");
    }

    #[test]
    fn drain_grace_holds_transitions() {
        let devices = fleet(3);
        let mut a = Autoscaler::new(policy(), 3);
        let idle = [0.0; 3];
        // First drain at t = 2e-4 (sustained from 1e-4)…
        a.step(1e-4, &idle, &devices);
        a.step(2e-4, &idle, &devices);
        assert_eq!(a.active_list(), [0]);
        // …then the grace (2e-4) blocks the next transition even
        // though idleness persists, only min_devices also blocks here;
        // use a join attempt instead: heavy backlog inside the grace.
        let service = devices[0].service_time_s();
        let heavy = [4.0 * service; 3];
        a.step(2.5e-4, &heavy, &devices);
        a.step(3.9e-4, &heavy, &devices);
        assert_eq!(a.active_list(), [0], "grace holds the join");
        // Past the grace, the sustained backlog finally admits one.
        a.step(6e-4, &heavy, &devices);
        assert_eq!(a.active_list(), [0, 1], "join lands after the grace");
    }

    #[test]
    fn drained_devices_can_rejoin() {
        let devices = fleet(2);
        let p = AutoscalePolicy { initial_devices: 2, drain_grace_s: 0.0, ..policy() };
        let mut a = Autoscaler::new(p, 2);
        let idle = [0.0; 2];
        let service = devices[0].service_time_s();
        let heavy = [4.0 * service; 2];
        a.step(0.0, &idle, &devices);
        a.step(1e-3, &idle, &devices);
        assert_eq!(a.active_list(), [0]);
        a.step(2e-3, &heavy, &devices);
        a.step(3e-3, &heavy, &devices);
        assert_eq!(a.active_list(), [0, 1], "the drained device rejoins");
        let kinds: Vec<&str> = a.into_spans().iter().map(|s| s.kind.name()).collect();
        assert_eq!(kinds, ["drain", "join"]);
    }
}
