//! # equinox-fleet
//!
//! Multi-accelerator cluster simulation: N Equinox devices behind a
//! request router, with fleet-level SLO and free-training ("harvest")
//! accounting.
//!
//! The paper evaluates one device; a production deployment serves its
//! traffic from a fleet. This crate composes the per-device machinery
//! that already exists — the `equinox-sim` engine, its Poisson/diurnal
//! load generator, fault injection, and the SLO monitor — into a
//! system-level study: one arrival stream enters a front-end router,
//! each request is dispatched to a device under a pluggable
//! [`RoutingPolicy`], every device then runs the full event-driven
//! simulation of its share of the traffic, and the per-device reports
//! are merged into a [`FleetReport`].
//!
//! ## Determinism contract
//!
//! A fleet run is a pure function of ([`Fleet`], [`FleetRunOptions`]).
//! Routing is a single serial pass over the merged arrival stream (the
//! router's fluid backlog model needs no device feedback, see
//! [`routing`]), after which the per-device simulations are
//! embarrassingly parallel: they run on the `equinox-par` pool and are
//! merged **by device index**, so every rendered report is
//! byte-identical at any thread count. The determinism golden test and
//! the CI smoke compare `EQUINOX_THREADS=1` against the default pool.
//!
//! ## Seed derivation
//!
//! All randomness derives from the one `seed` in [`FleetRunOptions`]
//! via [`equinox_sim::loadgen::split_seed`]: stream 0 seeds the
//! fleet-wide arrival process, stream 1 the router's
//! power-of-two-choices draws, stream `2 + i` is reserved for device
//! `i` (per-device fault burst traffic, or the fitted surrogate's
//! per-batch draws — never both, fitted devices are fault-free),
//! stream `1 << 32` draws each request's paid/free class, and stream
//! `1 << 33` seeds the interconnect's background-traffic phases (see
//! [`sync`]). Adding a device, switching the routing or admission
//! policy, changing the paid fraction, or attaching an interconnect
//! therefore never perturbs the offered traffic itself.
//!
//! ## The serving layer
//!
//! Overload is handled at the fleet edge, not in device queues: an
//! [`AdmissionSpec`] policy (admit-all, deadline-aware drop, token
//! buckets, paid/free priority — see [`admission`]) decides each
//! arrival's fate right after routing picks a candidate, and an
//! optional [`AutoscalePolicy`] ([`autoscale`]) grows and shrinks the
//! active device set reactively, draining (never dropping) the queues
//! of departing devices. Both run inside the serial routing pass, so
//! the determinism contract is unchanged. Per-tier accounting lands in
//! the report's [`equinox_sim::ClassLedger`]s.
//!
//! ## Why a training-aware policy
//!
//! Measured harvest (Figure 9, `results/fig9_training.csv`) is concave
//! in device load: flat up to ≈50 % load, falling steeply after. On a
//! homogeneous all-harvesting fleet, even spreading is therefore
//! already near-optimal — the policy that wins is the one that keeps
//! *mixed* fleets (only some devices co-host training) asymmetric:
//! [`RoutingPolicy::TrainingAware`] steers inference toward the
//! inference-only devices until they saturate, holding the harvesting
//! devices in the flat region of the harvest curve.

pub mod admission;
pub mod autoscale;
pub mod cluster;
pub mod device;
pub mod fitted;
pub mod report;
pub mod routing;
pub mod surrogate;
pub mod sync;

pub use admission::{AdmissionContext, AdmissionDecision, AdmissionPolicy, AdmissionSpec};
pub use autoscale::{AutoscalePolicy, ScalingKind, ScalingSpan};
pub use cluster::{ArrivalSource, Fleet, FleetRunOptions};
pub use device::{DeviceSpec, Fidelity};
pub use equinox_net::{AllReduceSchedule, InterconnectSpec, LinkSpec, SwitchPolicy, Topology};
pub use fitted::{sorted_quantile, FittedDraw, FittedTable, QuantileGrid, GRID_POINTS, MAX_STRETCH};
pub use report::{DeviceOutcome, FleetReport, EPOCH_SAMPLES};
pub use routing::RoutingPolicy;
pub use sync::SyncReport;
