//! Admission control at the fleet front end.
//!
//! The router decides *where* a request goes; an admission policy
//! decides *whether* it goes at all. Under overload the only choices
//! are unbounded queues (admit-all), bounded queues with explicit
//! rejections (token buckets, deadline-aware drop), or bounded queues
//! with *class-aware* rejections (priority admission: free-tier
//! requests are shed first, and paid spill is steered onto harvesting
//! devices only as the last resort, so harvest is preempted last).
//!
//! Like routing, admission runs in the single serial pass over the
//! merged arrival stream, so its state (token buckets) needs no device
//! feedback and fleet runs stay deterministic at any thread count. All
//! decisions are recorded per [`RequestClass`] in the fleet's class
//! ledgers — a shed request is an SLO violation by definition, so the
//! honest ledger is what makes "holds paid p999 under overload"
//! falsifiable.

use crate::device::DeviceSpec;
use equinox_isa::EquinoxError;
use equinox_sim::RequestClass;

/// Declarative admission-policy selection for one fleet run.
///
/// `rate_x` parameters are fractions of each device's saturation rate
/// ([`DeviceSpec::max_request_rate_per_s`]); `*_batches` parameters
/// are multiples of each device's batch size, so heterogeneous fleets
/// get per-device budgets automatically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdmissionSpec {
    /// Every request is admitted (the pre-serving-layer behaviour, and
    /// the overload baseline the gated sweep must show violating).
    AdmitAll,
    /// A request is admitted only if the candidate device's estimated
    /// backlog plus one batch service still fits inside
    /// `slack_x × deadline` — the request would otherwise already be
    /// doomed, so shedding it early protects the queue behind it.
    /// Admits everything when the run carries no SLO.
    DeadlineAware {
        /// Fraction of the deadline the backlog may consume.
        slack_x: f64,
    },
    /// Per-device token bucket: tokens refill at `rate_x ×` the
    /// device's saturation rate and cap at `burst_batches` batches;
    /// each admission spends one token. Class-blind.
    TokenBucket {
        /// Sustained admission rate, as a fraction of device saturation.
        rate_x: f64,
        /// Bucket capacity, in multiples of the device's batch size.
        burst_batches: f64,
    },
    /// Token bucket with paid/free tiers. Free requests must leave
    /// `free_reserve_batches` of tokens in the candidate's bucket and
    /// never spill — they are shed first. Paid requests may spill to
    /// any active device with a token: non-harvesting devices in
    /// ascending-backlog order first, harvesting devices last, so
    /// training is preempted only when the whole serving tier is out
    /// of budget.
    Priority {
        /// Sustained admission rate, as a fraction of device saturation.
        rate_x: f64,
        /// Bucket capacity, in multiples of the device's batch size.
        burst_batches: f64,
        /// Tokens (in batches) a free-tier request must leave behind.
        free_reserve_batches: f64,
    },
}

impl AdmissionSpec {
    /// The default deadline-aware policy (80 % of the deadline may be
    /// queued ahead of an admitted request).
    pub fn deadline_aware_default() -> Self {
        AdmissionSpec::DeadlineAware { slack_x: 0.8 }
    }

    /// The default token bucket (95 % of saturation sustained, 4
    /// batches of burst).
    pub fn token_bucket_default() -> Self {
        AdmissionSpec::TokenBucket { rate_x: 0.95, burst_batches: 4.0 }
    }

    /// The default priority policy (token-bucket defaults plus one
    /// batch of tokens reserved from the free tier).
    pub fn priority_default() -> Self {
        AdmissionSpec::Priority { rate_x: 0.95, burst_batches: 4.0, free_reserve_batches: 1.0 }
    }

    /// All four policies at their default parameters, in canonical
    /// sweep order.
    pub fn all_default() -> Vec<AdmissionSpec> {
        vec![
            AdmissionSpec::AdmitAll,
            AdmissionSpec::deadline_aware_default(),
            AdmissionSpec::token_bucket_default(),
            AdmissionSpec::priority_default(),
        ]
    }

    /// Stable identifier used in sweep artifacts and reports.
    pub fn name(&self) -> &'static str {
        match self {
            AdmissionSpec::AdmitAll => "admit_all",
            AdmissionSpec::DeadlineAware { .. } => "deadline_aware",
            AdmissionSpec::TokenBucket { .. } => "token_bucket",
            AdmissionSpec::Priority { .. } => "priority",
        }
    }

    /// Validates the policy parameters.
    ///
    /// # Errors
    ///
    /// [`EquinoxError::InvalidArgument`] for non-finite or
    /// non-positive rates/slacks/bursts, or a negative free reserve.
    pub fn validate(&self) -> Result<(), EquinoxError> {
        let positive = |what: &str, v: f64| -> Result<(), EquinoxError> {
            if !v.is_finite() || v <= 0.0 {
                return Err(EquinoxError::invalid_argument(
                    "AdmissionSpec::validate",
                    format!("{what} must be finite and positive, got {v}"),
                ));
            }
            Ok(())
        };
        match *self {
            AdmissionSpec::AdmitAll => Ok(()),
            AdmissionSpec::DeadlineAware { slack_x } => positive("slack_x", slack_x),
            AdmissionSpec::TokenBucket { rate_x, burst_batches } => {
                positive("rate_x", rate_x)?;
                positive("burst_batches", burst_batches)
            }
            AdmissionSpec::Priority { rate_x, burst_batches, free_reserve_batches } => {
                positive("rate_x", rate_x)?;
                positive("burst_batches", burst_batches)?;
                if !free_reserve_batches.is_finite() || free_reserve_batches < 0.0 {
                    return Err(EquinoxError::invalid_argument(
                        "AdmissionSpec::validate",
                        format!(
                            "free_reserve_batches must be finite and non-negative, \
                             got {free_reserve_batches}"
                        ),
                    ));
                }
                Ok(())
            }
        }
    }

    /// Instantiates the policy (its mutable budget state sized for
    /// `devices`).
    pub fn build(&self, devices: &[DeviceSpec]) -> Box<dyn AdmissionPolicy> {
        match *self {
            AdmissionSpec::AdmitAll => Box::new(AdmitAll),
            AdmissionSpec::DeadlineAware { slack_x } => Box::new(DeadlineAware { slack_x }),
            AdmissionSpec::TokenBucket { rate_x, burst_batches } => {
                Box::new(TokenBucket { buckets: Bucket::fleet(devices, rate_x, burst_batches) })
            }
            AdmissionSpec::Priority { rate_x, burst_batches, free_reserve_batches } => {
                Box::new(Priority {
                    buckets: Bucket::fleet(devices, rate_x, burst_batches),
                    free_reserve: devices
                        .iter()
                        .map(|d| free_reserve_batches * d.timing.batch as f64)
                        .collect(),
                })
            }
        }
    }
}

/// Everything a policy may consult for one decision.
pub struct AdmissionContext<'a> {
    /// Arrival time, reference-clock seconds.
    pub t_s: f64,
    /// The request's priority tier.
    pub class: RequestClass,
    /// The device the routing policy chose.
    pub candidate: usize,
    /// The router's fluid backlog estimates, seconds, per device.
    pub backlog_s: &'a [f64],
    /// The fleet's device specifications.
    pub devices: &'a [DeviceSpec],
    /// Devices currently serving (ascending indices); the candidate is
    /// always one of them.
    pub active: &'a [usize],
    /// The run's per-request deadline, if any.
    pub deadline_s: Option<f64>,
}

/// The verdict on one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// Serve on the router's candidate device.
    Admit,
    /// Serve, but on this device instead (priority spill).
    AdmitOn(usize),
    /// Reject before service.
    Shed,
}

/// A token bucket tracking one device's admission budget.
#[derive(Debug, Clone)]
struct Bucket {
    tokens: f64,
    last_s: f64,
    rate_per_s: f64,
    capacity: f64,
}

impl Bucket {
    fn fleet(devices: &[DeviceSpec], rate_x: f64, burst_batches: f64) -> Vec<Bucket> {
        devices
            .iter()
            .map(|d| {
                let capacity = burst_batches * d.timing.batch as f64;
                Bucket {
                    tokens: capacity,
                    last_s: 0.0,
                    rate_per_s: rate_x * d.max_request_rate_per_s(),
                    capacity,
                }
            })
            .collect()
    }

    /// Lazily refills up to `t_s`, then reports the balance.
    fn refill_to(&mut self, t_s: f64) -> f64 {
        let dt = (t_s - self.last_s).max(0.0);
        self.last_s = t_s;
        self.tokens = (self.tokens + dt * self.rate_per_s).min(self.capacity);
        self.tokens
    }
}

/// One fleet run's admission policy: consulted once per arrival, in
/// the serial routing pass, after the routing policy has picked its
/// candidate and before the request is dispatched. Implementations
/// must be deterministic functions of their own state and the context
/// — they run on the merged stream, so any hidden nondeterminism would
/// break the fleet's byte-identical-at-any-thread-count contract.
pub trait AdmissionPolicy {
    /// Stable identifier (matches [`AdmissionSpec::name`]).
    fn name(&self) -> &'static str;

    /// Decides one request's fate, updating any budget state.
    fn decide(&mut self, ctx: &AdmissionContext<'_>) -> AdmissionDecision;
}

/// [`AdmissionSpec::AdmitAll`].
struct AdmitAll;

impl AdmissionPolicy for AdmitAll {
    fn name(&self) -> &'static str {
        "admit_all"
    }

    fn decide(&mut self, _ctx: &AdmissionContext<'_>) -> AdmissionDecision {
        AdmissionDecision::Admit
    }
}

/// [`AdmissionSpec::DeadlineAware`].
struct DeadlineAware {
    slack_x: f64,
}

impl AdmissionPolicy for DeadlineAware {
    fn name(&self) -> &'static str {
        "deadline_aware"
    }

    fn decide(&mut self, ctx: &AdmissionContext<'_>) -> AdmissionDecision {
        let Some(deadline_s) = ctx.deadline_s else { return AdmissionDecision::Admit };
        let d = ctx.candidate;
        let eta_s = ctx.backlog_s[d] + ctx.devices[d].service_time_s();
        if eta_s <= self.slack_x * deadline_s {
            AdmissionDecision::Admit
        } else {
            AdmissionDecision::Shed
        }
    }
}

/// [`AdmissionSpec::TokenBucket`].
struct TokenBucket {
    buckets: Vec<Bucket>,
}

impl AdmissionPolicy for TokenBucket {
    fn name(&self) -> &'static str {
        "token_bucket"
    }

    fn decide(&mut self, ctx: &AdmissionContext<'_>) -> AdmissionDecision {
        let b = &mut self.buckets[ctx.candidate];
        if b.refill_to(ctx.t_s) >= 1.0 {
            b.tokens -= 1.0;
            AdmissionDecision::Admit
        } else {
            AdmissionDecision::Shed
        }
    }
}

/// [`AdmissionSpec::Priority`].
struct Priority {
    buckets: Vec<Bucket>,
    /// Tokens a free-tier request must leave behind, per device.
    free_reserve: Vec<f64>,
}

impl AdmissionPolicy for Priority {
    fn name(&self) -> &'static str {
        "priority"
    }

    fn decide(&mut self, ctx: &AdmissionContext<'_>) -> AdmissionDecision {
        match ctx.class {
            RequestClass::Free => {
                // Free tier: candidate only, and it must leave the
                // paid reserve untouched. Shed first.
                let d = ctx.candidate;
                let b = &mut self.buckets[d];
                if b.refill_to(ctx.t_s) >= 1.0 + self.free_reserve[d] {
                    b.tokens -= 1.0;
                    AdmissionDecision::Admit
                } else {
                    AdmissionDecision::Shed
                }
            }
            RequestClass::Paid => {
                // Paid tier: candidate first, then spill across the
                // active set — non-harvesting devices in ascending
                // backlog order before harvesting ones, so harvest is
                // preempted only as the last resort.
                for d in spill_order(ctx) {
                    let b = &mut self.buckets[d];
                    if b.refill_to(ctx.t_s) >= 1.0 {
                        b.tokens -= 1.0;
                        return if d == ctx.candidate {
                            AdmissionDecision::Admit
                        } else {
                            AdmissionDecision::AdmitOn(d)
                        };
                    }
                }
                AdmissionDecision::Shed
            }
        }
    }
}

/// Paid-spill order: the candidate, then the remaining active
/// non-harvesting devices by ascending backlog, then the active
/// harvesting devices by ascending backlog (ties break to the lower
/// index — fully deterministic).
fn spill_order(ctx: &AdmissionContext<'_>) -> impl Iterator<Item = usize> {
    let mut rest: Vec<usize> =
        ctx.active.iter().copied().filter(|&d| d != ctx.candidate).collect();
    rest.sort_by(|&a, &b| {
        (ctx.devices[a].harvests(), ctx.backlog_s[a], a)
            .partial_cmp(&(ctx.devices[b].harvests(), ctx.backlog_s[b], b))
            .expect("backlogs are finite")
    });
    std::iter::once(ctx.candidate).chain(rest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::tests::test_device;

    fn ctx<'a>(
        t_s: f64,
        class: RequestClass,
        candidate: usize,
        backlog_s: &'a [f64],
        devices: &'a [DeviceSpec],
        active: &'a [usize],
        deadline_s: Option<f64>,
    ) -> AdmissionContext<'a> {
        AdmissionContext { t_s, class, candidate, backlog_s, devices, active, deadline_s }
    }

    #[test]
    fn names_and_defaults_are_stable() {
        let names: Vec<&str> = AdmissionSpec::all_default().iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["admit_all", "deadline_aware", "token_bucket", "priority"]);
        let devices = vec![test_device("d0", 1e9, false)];
        for s in AdmissionSpec::all_default() {
            s.validate().unwrap();
            assert_eq!(s.build(&devices).name(), s.name());
        }
    }

    #[test]
    fn validate_rejects_degenerate_parameters() {
        for bad in [
            AdmissionSpec::DeadlineAware { slack_x: 0.0 },
            AdmissionSpec::TokenBucket { rate_x: f64::NAN, burst_batches: 4.0 },
            AdmissionSpec::TokenBucket { rate_x: 0.9, burst_batches: -1.0 },
            AdmissionSpec::Priority { rate_x: 0.9, burst_batches: 4.0, free_reserve_batches: -0.5 },
        ] {
            assert_eq!(bad.validate().unwrap_err().kind(), "invalid-argument", "{bad:?}");
        }
    }

    #[test]
    fn deadline_aware_sheds_doomed_requests() {
        let devices = vec![test_device("d0", 1e9, false)];
        let mut p = AdmissionSpec::DeadlineAware { slack_x: 0.5 }.build(&devices);
        let deadline = Some(16.0 * devices[0].service_time_s());
        // Empty backlog: one service time ≤ 8 service times of slack.
        let ok = ctx(0.0, RequestClass::Paid, 0, &[0.0], &devices, &[0], deadline);
        assert_eq!(p.decide(&ok), AdmissionDecision::Admit);
        // Backlog past the slack: shed.
        let doomed_backlog = [9.0 * devices[0].service_time_s()];
        let bad = ctx(0.0, RequestClass::Paid, 0, &doomed_backlog, &devices, &[0], deadline);
        assert_eq!(p.decide(&bad), AdmissionDecision::Shed);
        // No SLO attached: everything is admitted.
        let free_run = ctx(0.0, RequestClass::Paid, 0, &doomed_backlog, &devices, &[0], None);
        assert_eq!(p.decide(&free_run), AdmissionDecision::Admit);
    }

    #[test]
    fn token_bucket_spends_bursts_and_refills() {
        let devices = vec![test_device("d0", 1e9, false)];
        let spec = AdmissionSpec::TokenBucket { rate_x: 1.0, burst_batches: 1.0 };
        let mut p = spec.build(&devices);
        // Burst capacity is one batch = 16 tokens at t = 0.
        for i in 0..16 {
            let c = ctx(0.0, RequestClass::Paid, 0, &[0.0], &devices, &[0], None);
            assert_eq!(p.decide(&c), AdmissionDecision::Admit, "token {i}");
        }
        let c = ctx(0.0, RequestClass::Paid, 0, &[0.0], &devices, &[0], None);
        assert_eq!(p.decide(&c), AdmissionDecision::Shed, "bucket exhausted");
        // One request's worth of wall time refills one token.
        let t = devices[0].work_per_request_s();
        let c = ctx(t, RequestClass::Paid, 0, &[0.0], &devices, &[0], None);
        assert_eq!(p.decide(&c), AdmissionDecision::Admit);
    }

    #[test]
    fn priority_sheds_free_first_and_spills_paid_to_harvesting_last() {
        // d0 non-harvesting (the candidate), d1 non-harvesting with
        // more backlog, d2 harvesting and idle.
        let devices = vec![
            test_device("d0", 1e9, false),
            test_device("d1", 1e9, false),
            test_device("d2", 1e9, true),
        ];
        let spec = AdmissionSpec::Priority {
            rate_x: 1.0,
            burst_batches: 1.0,
            free_reserve_batches: 0.5,
        };
        let mut p = spec.build(&devices);
        let active = [0, 1, 2];
        let backlog = [0.0, 1e-6, 0.0];
        // Drain d0 to below the free reserve (8 tokens) but not empty.
        for _ in 0..10 {
            let c = ctx(0.0, RequestClass::Paid, 0, &backlog, &devices, &active, None);
            assert_eq!(p.decide(&c), AdmissionDecision::Admit);
        }
        // A free request now fails the reserve check and must NOT spill.
        let c = ctx(0.0, RequestClass::Free, 0, &backlog, &devices, &active, None);
        assert_eq!(p.decide(&c), AdmissionDecision::Shed, "free tier is shed first");
        // Paid requests keep landing on d0 until its bucket is empty…
        for _ in 0..6 {
            let c = ctx(0.0, RequestClass::Paid, 0, &backlog, &devices, &active, None);
            assert_eq!(p.decide(&c), AdmissionDecision::Admit);
        }
        // …then spill to the non-harvesting d1, not the idle harvester.
        let c = ctx(0.0, RequestClass::Paid, 0, &backlog, &devices, &active, None);
        assert_eq!(p.decide(&c), AdmissionDecision::AdmitOn(1), "harvest preempted last");
        // Once d1 is also dry, paid finally spills onto the harvester.
        for _ in 0..15 {
            let c = ctx(0.0, RequestClass::Paid, 0, &backlog, &devices, &active, None);
            p.decide(&c);
        }
        let c = ctx(0.0, RequestClass::Paid, 0, &backlog, &devices, &active, None);
        assert_eq!(p.decide(&c), AdmissionDecision::AdmitOn(2));
        // And when every active bucket is dry, even paid is shed.
        for _ in 0..16 {
            let c = ctx(0.0, RequestClass::Paid, 0, &backlog, &devices, &active, None);
            p.decide(&c);
        }
        let c = ctx(0.0, RequestClass::Paid, 0, &backlog, &devices, &active, None);
        assert_eq!(p.decide(&c), AdmissionDecision::Shed);
    }

    #[test]
    fn priority_respects_the_active_set() {
        let devices = vec![
            test_device("d0", 1e9, false),
            test_device("d1", 1e9, false),
            test_device("d2", 1e9, true),
        ];
        let spec =
            AdmissionSpec::Priority { rate_x: 1.0, burst_batches: 1.0, free_reserve_batches: 0.0 };
        let mut p = spec.build(&devices);
        // Only d0 and d2 are active; drain d0 dry.
        let active = [0, 2];
        for _ in 0..16 {
            let c = ctx(0.0, RequestClass::Paid, 0, &[0.0; 3], &devices, &active, None);
            p.decide(&c);
        }
        // Paid spill must skip the inactive d1 even though it has
        // tokens, landing on the active harvester d2.
        let c = ctx(0.0, RequestClass::Paid, 0, &[0.0; 3], &devices, &active, None);
        assert_eq!(p.decide(&c), AdmissionDecision::AdmitOn(2));
    }
}
