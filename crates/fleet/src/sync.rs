//! Gradient synchronization: the bridge between a fleet run and the
//! `equinox-net` packet layer.
//!
//! Harvested free epochs were, until this layer existed, per-device
//! fictions: each device trained its own replica and nothing ever paid
//! for combining gradients. With an
//! [`InterconnectSpec`] attached, every
//! free epoch must ship the model's gradient bytes through an
//! all-reduce round over the harvesting participants, contending with
//! the fleet's inference-DMA and harvest-staging traffic. The rounds
//! of one run are statistically identical (the background combs are
//! periodic and the schedule is fixed), so one round is simulated and
//! its cost applied analytically to every epoch:
//!
//! * Synchronous data-parallel training runs at the slowest
//!   participant's pace: with `e_min` the minimum per-participant raw
//!   free epochs over the horizon `H`, each epoch's wall time grows
//!   from `H / e_min` to `H / e_min + round_cycles`, so each
//!   participant completes `e_min / (1 + round_cycles · e_min / H)`
//!   synced epochs and the fleet total is `k ×` that.
//! * An aborted, deadlocked, or truncated round means the fleet never
//!   synchronizes: synced epochs are zero (raw harvest is unchanged —
//!   the cycles were still stolen, they just trained nothing global).
//! * The mean queueing delay the round's congestion added to the
//!   background DMA packets is charged to every attributed request
//!   latency sample as [`ClassLedger::sync_delay_s`], and completions
//!   pushed past the deadline by exactly that surcharge are recounted
//!   as [`ClassLedger::sync_deadline_misses`].

use crate::cluster::{FleetRunOptions, INTERCONNECT_STREAM};
use crate::device::DeviceSpec;
use crate::report::DeviceOutcome;
use equinox_isa::EquinoxError;
use equinox_net::{run_allreduce_round, InterconnectSpec};
use equinox_sim::loadgen::split_seed;
use equinox_sim::{ClassLedger, SchedulerPolicy};

/// The interconnect's verdict on one fleet run: what one all-reduce
/// round cost, what the fleet's harvest is worth once every free epoch
/// pays for it, and what the congestion did to the inference path.
#[derive(Debug, Clone, PartialEq)]
pub struct SyncReport {
    /// Fabric topology name.
    pub topology: &'static str,
    /// Switching policy name.
    pub switching: &'static str,
    /// All-reduce schedule name.
    pub schedule: &'static str,
    /// Harvesting participants (devices with a training service and a
    /// scheduler that grants it cycles).
    pub participants: usize,
    /// Simulated cycles one all-reduce round takes on the loaded
    /// fabric (0 with fewer than two participants).
    pub round_cycles: u64,
    /// Go-back-N timeout firings during the round.
    pub retries: u64,
    /// Flows that exhausted their retry budget.
    pub aborted_flows: usize,
    /// True when PFC backpressure deadlocked the round.
    pub deadlocked: bool,
    /// True when the round hit the engine's event-cap backstop.
    pub truncated: bool,
    /// True when every link's byte conservation held (offered ==
    /// delivered + dropped + still queued at round end).
    pub conserved: bool,
    /// Mean queueing delay of background DMA packets, cycles.
    pub bg_delay_mean_cycles: f64,
    /// 99th-percentile queueing delay of background DMA packets, cycles.
    pub bg_delay_p99_cycles: u64,
    /// Per-link utilization over the round, `(name, fraction)` in
    /// fabric link order.
    pub link_utilization: Vec<(String, f64)>,
    /// The busiest link's utilization.
    pub peak_link_utilization: f64,
    /// Fleet free epochs before paying for synchronization (sum over
    /// participants of their raw harvest).
    pub raw_free_epochs: f64,
    /// Fleet free epochs once every epoch runs at the slowest
    /// participant's pace and pays one all-reduce round; 0 when the
    /// round aborted or deadlocked.
    pub synced_free_epochs: f64,
    /// Fraction of each participant's training wall-clock spent inside
    /// all-reduce rounds (1.0 when the round never completes).
    pub sync_overhead_frac: f64,
    /// The DMA delay surcharge applied to the ledgers, seconds.
    pub sync_delay_s: f64,
}

impl std::fmt::Display for SyncReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sync[{} all-reduce over {}, {}]: {} participant(s), round {} cycles, \
             {:.2} raw → {:.2} synced epochs ({:.1} % overhead), peak link {:.0} %, \
             bg delay +{:.0} cycles",
            self.schedule,
            self.topology,
            self.switching,
            self.participants,
            self.round_cycles,
            self.raw_free_epochs,
            self.synced_free_epochs,
            self.sync_overhead_frac * 100.0,
            self.peak_link_utilization * 100.0,
            self.bg_delay_mean_cycles,
        )?;
        if self.deadlocked {
            write!(f, ", DEADLOCKED")?;
        } else if self.aborted_flows > 0 {
            write!(f, ", {} flow(s) aborted", self.aborted_flows)?;
        }
        Ok(())
    }
}

/// Devices that participate in gradient synchronization: a training
/// service is attached and the scheduler actually grants it cycles.
pub(crate) fn participant_indices(devices: &[DeviceSpec]) -> Vec<usize> {
    devices
        .iter()
        .enumerate()
        .filter(|(_, d)| {
            d.training.is_some()
                && !matches!(d.config.scheduler, SchedulerPolicy::InferenceOnly)
        })
        .map(|(i, _)| i)
        .collect()
}

/// Simulates one all-reduce round on the loaded fabric and folds its
/// cost into the run: the synced-harvest arithmetic above, plus the
/// DMA-delay recount on `class_ledgers`.
pub(crate) fn evaluate_sync(
    spec: &InterconnectSpec,
    devices: &[DeviceSpec],
    outcomes: &[DeviceOutcome],
    class_ledgers: &mut [ClassLedger],
    opts: &FleetRunOptions,
    freq_ref: f64,
) -> Result<SyncReport, EquinoxError> {
    let participants = participant_indices(devices);
    let n = devices.len();
    let horizon = opts.horizon_cycles.max(1) as f64;

    // Per-device background demand on its host link, bytes/cycle over
    // the horizon: inference DMA (activations in and out per issued
    // batch) plus harvest staging (the training service's DRAM
    // appetite, prorated over the MMU cycles it was actually granted).
    // `add_background` caps each at `bg_cap_frac ×` link rate.
    let bg: Vec<f64> = devices
        .iter()
        .zip(outcomes)
        .map(|(d, o)| {
            let mut bytes = o.report.batches_issued as f64 * spec.dma_bytes_per_batch as f64;
            if let Some(p) = &d.training {
                if p.iteration_mmu_cycles > 0 {
                    bytes += o.report.training_mmu_cycles * p.iteration_dram_bytes as f64
                        / p.iteration_mmu_cycles as f64;
                }
            }
            bytes / horizon
        })
        .collect();

    let round = run_allreduce_round(
        spec,
        n,
        &participants,
        &bg,
        split_seed(opts.seed, INTERCONNECT_STREAM),
    )?;

    let k = participants.len();
    let raw_free_epochs: f64 = participants.iter().map(|&i| outcomes[i].free_epochs).sum();
    let (synced_free_epochs, sync_overhead_frac) = if k < 2 {
        // Nothing to combine: a lone trainer (or none) syncs for free.
        (raw_free_epochs, 0.0)
    } else if !round.completed() {
        (0.0, 1.0)
    } else {
        let e_min = participants
            .iter()
            .map(|&i| outcomes[i].free_epochs)
            .fold(f64::INFINITY, f64::min);
        if e_min <= 0.0 {
            (0.0, 0.0)
        } else {
            let per = e_min / (1.0 + round.round_cycles as f64 * e_min / horizon);
            let frac = round.round_cycles as f64 * per / horizon;
            (k as f64 * per, frac)
        }
    };

    // Charge the congestion's mean DMA queueing delay to the request
    // path: attributed completions that made the deadline by less than
    // the surcharge are recounted as interconnect-caused misses.
    let sync_delay_s = if k >= 2 { round.bg_delay_mean_cycles / freq_ref } else { 0.0 };
    if sync_delay_s > 0.0 {
        if let Some(slo) = opts.slo {
            for l in class_ledgers.iter_mut() {
                l.sync_delay_s = sync_delay_s;
                l.sync_deadline_misses = l
                    .latency
                    .samples()
                    .iter()
                    .filter(|&&s| s <= slo.deadline_s && s + sync_delay_s > slo.deadline_s)
                    .count();
            }
        }
    }

    Ok(SyncReport {
        topology: spec.topology.name(),
        switching: spec.switching.name(),
        schedule: spec.schedule.name(),
        participants: k,
        round_cycles: round.round_cycles,
        retries: round.retries,
        aborted_flows: round.aborted_flows,
        deadlocked: round.deadlocked,
        truncated: round.truncated,
        conserved: round.conserves(),
        bg_delay_mean_cycles: round.bg_delay_mean_cycles,
        bg_delay_p99_cycles: round.bg_delay_p99_cycles,
        link_utilization: round
            .links
            .iter()
            .map(|l| (l.name.clone(), l.utilization(round.round_cycles)))
            .collect(),
        peak_link_utilization: round.peak_utilization(),
        raw_free_epochs,
        synced_free_epochs,
        sync_overhead_frac,
        sync_delay_s,
    })
}
