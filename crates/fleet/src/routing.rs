//! Pluggable request-routing policies and the router's fluid load
//! model.
//!
//! The router dispatches the merged arrival stream in one serial pass,
//! which keeps fleet runs deterministic and lets the per-device engine
//! simulations run embarrassingly parallel afterwards. To do that
//! without device feedback, the router tracks what a real front-end
//! load balancer tracks: a *fluid estimate* of each device's
//! outstanding work — it knows what it dispatched and each device's
//! nominal saturation service rate, not the device's internal batching
//! state. A dispatch adds one request's worth of service seconds; the
//! estimate drains linearly between arrivals.

use crate::device::DeviceSpec;
use equinox_arith::rng::SplitMix64;

/// Routing policy of the fleet front-end.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RoutingPolicy {
    /// Requests cycle through devices in index order, oblivious to
    /// state and heterogeneity.
    RoundRobin,
    /// Each request goes to the device with the least estimated
    /// outstanding work, in seconds (so heterogeneous devices compare
    /// fairly). Ties break to the lowest index.
    LeastOutstanding,
    /// Power-of-two-choices: two candidates are drawn from the seeded
    /// router stream and the request goes to the less loaded one — the
    /// classic randomized balancer with exponentially better imbalance
    /// than one choice.
    PowerOfTwo,
    /// Steers load away from devices currently harvesting free-training
    /// epochs. Inference-only devices take requests first
    /// (least-outstanding among those under `busy_cap_batches` of
    /// estimated backlog); only when every preferred device is at its
    /// cap does load spill onto harvesting devices, least-outstanding.
    ///
    /// Rationale: measured harvest is concave in device load (flat to
    /// ≈50 %, steep after — Figure 9), so shielding the harvesting
    /// devices buys training throughput roughly for free until the
    /// preferred devices run out of headroom. The cap bounds the
    /// latency cost of the asymmetry: a preferred device is never
    /// loaded beyond `busy_cap_batches` service times of backlog while
    /// any alternative exists.
    TrainingAware {
        /// Backlog cap on preferred (non-harvesting) devices, in
        /// multiples of their own batch service time.
        busy_cap_batches: f64,
    },
}

impl RoutingPolicy {
    /// The default training-aware policy (cap of 3 batch service
    /// times, comfortably inside a 16×-service-time deadline SLO).
    pub fn training_aware_default() -> Self {
        RoutingPolicy::TrainingAware { busy_cap_batches: 3.0 }
    }

    /// Stable identifier used in sweep artifacts and reports.
    pub fn name(&self) -> &'static str {
        match self {
            RoutingPolicy::RoundRobin => "round_robin",
            RoutingPolicy::LeastOutstanding => "least_outstanding",
            RoutingPolicy::PowerOfTwo => "power_of_two",
            RoutingPolicy::TrainingAware { .. } => "training_aware",
        }
    }

    /// All four policies at their default parameters, in canonical
    /// sweep order.
    pub fn all_default() -> Vec<RoutingPolicy> {
        vec![
            RoutingPolicy::RoundRobin,
            RoutingPolicy::LeastOutstanding,
            RoutingPolicy::PowerOfTwo,
            RoutingPolicy::training_aware_default(),
        ]
    }
}

/// The front-end dispatcher (see the module docs for the fluid model).
pub(crate) struct Router<'a> {
    devices: &'a [DeviceSpec],
    policy: RoutingPolicy,
    /// Estimated outstanding work per device, seconds.
    backlog_s: Vec<f64>,
    /// Timestamp of the last backlog decay, seconds.
    last_s: f64,
    /// Round-robin cursor.
    cursor: usize,
    /// Candidate draws for power-of-two-choices.
    rng: SplitMix64,
}

impl<'a> Router<'a> {
    /// A router over `devices` with the policy's randomness seeded from
    /// the dedicated router stream.
    pub(crate) fn new(devices: &'a [DeviceSpec], policy: RoutingPolicy, seed: u64) -> Self {
        Router {
            devices,
            policy,
            backlog_s: vec![0.0; devices.len()],
            last_s: 0.0,
            cursor: 0,
            rng: SplitMix64::seed_from_u64(seed),
        }
    }

    /// Drains every backlog estimate at the device's saturation rate
    /// for the wall time elapsed since the previous arrival.
    pub(crate) fn decay_to(&mut self, t_s: f64) {
        let dt = (t_s - self.last_s).max(0.0);
        self.last_s = t_s;
        for b in &mut self.backlog_s {
            *b = (*b - dt).max(0.0);
        }
    }

    /// The current fluid backlog estimates, seconds, per device (what
    /// the autoscaler and admission policies consult).
    pub(crate) fn backlogs(&self) -> &[f64] {
        &self.backlog_s
    }

    /// The least-loaded device among `candidates` (ties break to the
    /// lowest index; `candidates` must be ascending for that to hold).
    fn least_of(&self, candidates: impl Iterator<Item = usize>) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for d in candidates {
            let b = self.backlog_s[d];
            if best.is_none_or(|(_, bb)| b < bb) {
                best = Some((d, b));
            }
        }
        best.map(|(d, _)| d)
    }

    /// Picks a candidate device from `active` (ascending indices,
    /// non-empty) without charging it — the admission layer decides
    /// whether (and where) the request is actually dispatched. With
    /// the full device list this reproduces the pre-admission routing
    /// decisions bit for bit.
    pub(crate) fn pick(&mut self, active: &[usize]) -> usize {
        debug_assert!(!active.is_empty(), "the active set is never empty");
        match self.policy {
            RoutingPolicy::RoundRobin => {
                // The smallest active index at or past the cursor,
                // wrapping to the smallest overall.
                let pos = active.partition_point(|&d| d < self.cursor);
                let d = if pos < active.len() { active[pos] } else { active[0] };
                self.cursor = (d + 1) % self.devices.len();
                d
            }
            RoutingPolicy::LeastOutstanding => {
                self.least_of(active.iter().copied()).expect("fleet is non-empty")
            }
            RoutingPolicy::PowerOfTwo => {
                let i = self.rng.usize_in(0, active.len());
                let j = self.rng.usize_in(0, active.len());
                let (lo, hi) = (i.min(j), i.max(j));
                // least_of needs ascending candidates for the tie-break.
                self.least_of([active[lo], active[hi]].into_iter()).expect("two candidates")
            }
            RoutingPolicy::TrainingAware { busy_cap_batches } => {
                let preferred = active.iter().copied().filter(|&d| {
                    !self.devices[d].harvests()
                        && self.backlog_s[d]
                            < busy_cap_batches * self.devices[d].service_time_s()
                });
                self.least_of(preferred)
                    .or_else(|| self.least_of(active.iter().copied()))
                    .expect("fleet is non-empty")
            }
        }
    }

    /// Charges one request's worth of service seconds to `d`'s backlog
    /// estimate (called once the request is actually dispatched).
    pub(crate) fn charge(&mut self, d: usize) {
        self.backlog_s[d] += self.devices[d].work_per_request_s();
    }

    /// Routes one request arriving at `t_s` seconds with every device
    /// eligible, returning the chosen device index and charging its
    /// backlog estimate. (The production pass drives
    /// `decay_to`/`pick`/`charge` separately so admission can veto the
    /// dispatch; this composed form is the routing tests' harness.)
    #[cfg(test)]
    pub(crate) fn route(&mut self, t_s: f64) -> usize {
        self.decay_to(t_s);
        let all: Vec<usize> = (0..self.devices.len()).collect();
        let d = self.pick(&all);
        self.charge(d);
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::tests::test_device;

    fn fleet(n: usize, harvesting: &[usize]) -> Vec<DeviceSpec> {
        (0..n)
            .map(|i| test_device(&format!("d{i}"), 1e9, harvesting.contains(&i)))
            .collect()
    }

    #[test]
    fn round_robin_cycles_in_index_order() {
        let devices = fleet(3, &[]);
        let mut r = Router::new(&devices, RoutingPolicy::RoundRobin, 1);
        let picks: Vec<usize> = (0..7).map(|i| r.route(i as f64 * 1e-6)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn least_outstanding_balances_and_breaks_ties_low() {
        let devices = fleet(3, &[]);
        let mut r = Router::new(&devices, RoutingPolicy::LeastOutstanding, 1);
        // All empty: tie breaks to 0; then 0 carries work, so 1, then 2.
        assert_eq!(r.route(0.0), 0);
        assert_eq!(r.route(0.0), 1);
        assert_eq!(r.route(0.0), 2);
        // Round two at the same instant: all equal again, back to 0.
        assert_eq!(r.route(0.0), 0);
    }

    #[test]
    fn backlog_decays_between_arrivals() {
        let devices = fleet(2, &[]);
        let mut r = Router::new(&devices, RoutingPolicy::LeastOutstanding, 1);
        // A burst of simultaneous requests spreads across both devices.
        for _ in 0..10 {
            r.route(0.0);
        }
        // Far in the future every estimate has drained to zero and the
        // tie-break returns to device 0.
        assert_eq!(r.route(1.0), 0);
    }

    #[test]
    fn power_of_two_is_deterministic_for_a_seed() {
        let devices = fleet(4, &[]);
        let picks = |seed: u64| -> Vec<usize> {
            let mut r = Router::new(&devices, RoutingPolicy::PowerOfTwo, seed);
            (0..32).map(|i| r.route(i as f64 * 1e-7)).collect()
        };
        assert_eq!(picks(7), picks(7));
        assert_ne!(picks(7), picks(8), "different streams draw differently");
    }

    #[test]
    fn training_aware_prefers_inference_only_devices() {
        let devices = fleet(4, &[2, 3]);
        let mut r = Router::new(&devices, RoutingPolicy::training_aware_default(), 1);
        // Simultaneous burst: fills 0 and 1 up to the cap before ever
        // touching the harvesting devices 2 and 3.
        let cap_batches = 3.0;
        let per_device =
            (cap_batches * devices[0].service_time_s() / devices[0].work_per_request_s()).ceil()
                as usize;
        let mut picks = Vec::new();
        for _ in 0..2 * per_device + 8 {
            picks.push(r.route(0.0));
        }
        // It does spill once the preferred devices are saturated…
        let first_harvesting = picks
            .iter()
            .position(|&d| d >= 2)
            .expect("burst past the cap must spill to harvesting devices");
        // …but only after the preferred devices absorbed (at least)
        // their cap each.
        assert!(
            first_harvesting >= 2 * per_device - 2,
            "spilled to a harvesting device after {first_harvesting} picks (cap {per_device}/device)"
        );
    }

    #[test]
    fn training_aware_degenerates_to_least_outstanding() {
        // All devices harvest: no preferred set, so the policy must
        // match plain least-outstanding-work.
        let devices = fleet(3, &[0, 1, 2]);
        let mut ta = Router::new(&devices, RoutingPolicy::training_aware_default(), 1);
        let mut lo = Router::new(&devices, RoutingPolicy::LeastOutstanding, 1);
        for i in 0..64 {
            let t = i as f64 * 3e-7;
            assert_eq!(ta.route(t), lo.route(t));
        }
    }

    #[test]
    fn picks_respect_the_active_set() {
        let devices = fleet(4, &[3]);
        // Round-robin skips drained devices but keeps cycling.
        let mut r = Router::new(&devices, RoutingPolicy::RoundRobin, 1);
        r.decay_to(0.0);
        let active = [1, 3];
        let picks: Vec<usize> = (0..4)
            .map(|_| {
                let d = r.pick(&active);
                r.charge(d);
                d
            })
            .collect();
        assert_eq!(picks, vec![1, 3, 1, 3]);
        // Every policy stays inside the active set, even when its
        // preferred devices are drained.
        for policy in RoutingPolicy::all_default() {
            let mut r = Router::new(&devices, policy, 1);
            r.decay_to(0.0);
            for _ in 0..32 {
                let d = r.pick(&active);
                assert!(active.contains(&d), "{} picked drained {d}", policy.name());
                r.charge(d);
            }
        }
    }

    #[test]
    fn policy_names_are_stable() {
        let names: Vec<&str> =
            RoutingPolicy::all_default().iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            vec!["round_robin", "least_outstanding", "power_of_two", "training_aware"]
        );
    }
}
