//! Co-location study: how much training throughput can each Equinox
//! configuration reclaim as the inference load varies, and what it costs
//! in inference tail latency under different schedulers.
//!
//! Run with: `cargo run --release --example colocate_training`

use equinox::core::{Equinox, RunOptions};
use equinox::isa::models::ModelSpec;
use equinox::sim::SchedulerPolicy;
use equinox_arith::Encoding;

fn main() {
    let model = ModelSpec::lstm_2048_25();
    let loads = [0.2, 0.4, 0.6, 0.8, 0.95];

    println!("Training throughput (TOp/s) reclaimed by configuration and load:");
    print!("{:<16}", "config");
    for l in loads {
        print!("{:>9.0}%", l * 100.0);
    }
    println!();
    for eq in Equinox::family(Encoding::Hbfp8) {
        let timing = eq.compile(&model).expect("reference workload compiles");
        let profile = eq.training_profile(&model);
        print!("{:<16}", eq.config().name);
        for load in loads {
            let r = eq.run_compiled(&timing, &RunOptions::colocated(load)).expect("simulation run");
            print!("{:>10.1}", r.training_tops());
        }
        let bound = profile
            .max_achievable_ops(eq.freq_hz(), eq.config().dram.bandwidth_bytes_per_s)
            / 1e12;
        println!("   (dedicated-accelerator bound {bound:.0} TOp/s)");
    }

    // Scheduler comparison on the 500 µs configuration at high load.
    let eq = Equinox::family(Encoding::Hbfp8)
        .into_iter()
        .find(|e| e.config().name == "Equinox_500us")
        .expect("family contains the 500 µs configuration");
    let timing = eq.compile(&model).expect("reference workload compiles");
    println!("\nScheduler comparison on {} at 85% load:", eq.config().name);
    for (name, policy) in [
        ("inference-only", SchedulerPolicy::InferenceOnly),
        ("fair-share", SchedulerPolicy::Fair),
        (
            "hardware priority",
            SchedulerPolicy::Priority { queue_threshold: 2 * eq.dims().n },
        ),
    ] {
        let r = eq.run_compiled(
            &timing,
            &RunOptions {
                scheduler: Some(policy),
                ..RunOptions::colocated(0.85)
            },
        ).expect("simulation run");
        println!(
            "  {:<18} inf {:>6.1} TOp/s  p99 {:>7.2} ms  train {:>6.1} TOp/s",
            name,
            r.inference_tops(),
            r.p99_ms(),
            r.training_tops()
        );
    }
    println!(
        "\nThe hardware priority scheduler keeps inference latency at the \
         inference-only level while still reclaiming idle cycles; the fair \
         scheduler sacrifices tail latency at high load (Figure 10)."
    );
}
