//! Quickstart: build an Equinox accelerator, serve LSTM inference, and
//! piggyback training on the idle cycles.
//!
//! Run with: `cargo run --release --example quickstart`

use equinox::core::{Equinox, RunOptions};
use equinox::isa::models::ModelSpec;
use equinox::model::LatencyConstraint;
use equinox_arith::Encoding;

fn main() {
    // 1. Pick a Pareto-optimal design for a 500 µs latency constraint
    //    via the paper's §4 design-space exploration.
    let eq = Equinox::build(Encoding::Hbfp8, LatencyConstraint::Micros(500))
        .expect("a 500 µs design exists under the 75 W / 300 mm² envelope");
    println!("Selected design: {eq}");
    println!(
        "  analytical: {:.0} TOp/s peak, {:.0} µs batch service time",
        eq.design().throughput_tops(),
        eq.design().service_time_us()
    );

    // 2. Compile the DeepBench LSTM onto the geometry.
    let model = ModelSpec::lstm_2048_25();
    let timing = eq.compile(&model).expect("reference workload compiles");
    println!(
        "Compiled {}: {} cycles per batch of {} ({:.0} µs at {:.0} MHz)",
        model,
        timing.total_cycles,
        timing.batch,
        timing.service_time_s(eq.freq_hz()) * 1e6,
        eq.freq_hz() / 1e6
    );

    // 3. Serve Poisson traffic at 50 % load, inference only.
    let inference_only = eq.run(&RunOptions::inference(0.5)).expect("simulation run");
    println!("\nInference only @50% load:\n  {inference_only}");

    // 4. Same load, now piggybacking an LSTM training service.
    let colocated = eq.run(&RunOptions::colocated(0.5)).expect("simulation run");
    println!("\nWith piggybacked training @50% load:\n  {colocated}");
    println!(
        "\nTraining reclaimed {:.1} TOp/s from idle cycles; inference p99 moved {:.2} ms -> {:.2} ms",
        colocated.training_tops(),
        inference_only.p99_ms(),
        colocated.p99_ms()
    );
}
