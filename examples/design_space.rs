//! Design-space exploration: sweep the §4 analytical models, print the
//! Pareto frontier and Table 1 for both encodings.
//!
//! Run with: `cargo run --release --example design_space`

use equinox::model::{DesignSpace, ParetoTable, TechnologyParams};
use equinox_arith::Encoding;

fn main() {
    let tech = TechnologyParams::tsmc28();
    println!(
        "Technology: {:.0} mm² die, {:.0} W envelope, {:.0} MB SRAM, {:.0} GB/s HBM",
        tech.die_area_mm2,
        tech.power_budget_w,
        tech.sram_capacity_mb,
        tech.dram_bandwidth_bytes_per_s / 1e9
    );

    let hbfp8 = DesignSpace::sweep(Encoding::Hbfp8, &tech);
    let bf16 = DesignSpace::sweep(Encoding::Bfloat16, &tech);

    for space in [&hbfp8, &bf16] {
        println!(
            "\n{} design space: {} feasible (n, f) points, {} Pareto-optimal",
            space.encoding(),
            space.points().len(),
            space.frontier().len()
        );
        println!("Pareto frontier (ascending throughput):");
        for d in space.frontier().iter().take(12) {
            println!("  {d}");
        }
        if space.frontier().len() > 12 {
            println!("  … {} more", space.frontier().len() - 12);
        }
    }

    println!("\nTable 1 — Pareto-optimal designs under latency constraints:\n");
    println!("{}", ParetoTable::build(&bf16, &hbfp8));

    // The headline: relaxing the latency constraint to 500 µs buys
    // ~6x the latency-optimal throughput for hbfp8.
    use equinox::model::LatencyConstraint;
    let min = hbfp8.best_under_latency(LatencyConstraint::MinLatency).unwrap();
    let l500 = hbfp8.best_under_latency(LatencyConstraint::Micros(500)).unwrap();
    println!(
        "hbfp8: Equinox_500us reaches {:.2}x the throughput of Equinox_min",
        l500.throughput_ops / min.throughput_ops
    );
}
