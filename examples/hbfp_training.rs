//! Figure 2 at your fingertips: train the same model under fp32, hbfp8
//! and bfloat16 arithmetic and watch the convergence curves coincide —
//! plus the mantissa-width ablation showing why 8 bits is the operating
//! point.
//!
//! Run with: `cargo run --release --example hbfp_training`

use equinox::trainer::ablation::mantissa_width_ablation;
use equinox::trainer::backend::{Backend, Bf16Backend, Fp32Backend, Hbfp8Backend};
use equinox::trainer::dataset;
use equinox::trainer::train::{train_classifier, train_language_model, TrainConfig};

fn main() {
    let cfg = TrainConfig { epochs: 25, ..Default::default() };

    // Figure 2a analog: validation error on a classification task.
    println!("Classification (validation error by epoch):");
    let data = dataset::teacher_student(1024, 256, 16, 4, 97);
    let hbfp8 = Hbfp8Backend::new();
    let backends: [&dyn Backend; 3] = [&Fp32Backend, &hbfp8, &Bf16Backend];
    let curves: Vec<_> = backends
        .iter()
        .map(|b| train_classifier(*b, &data, &cfg))
        .collect();
    print!("{:>8}", "epoch");
    for c in &curves {
        print!("{:>10}", c.label);
    }
    println!();
    for i in (0..cfg.epochs).step_by(4) {
        print!("{:>8}", i + 1);
        for c in &curves {
            print!("{:>10.3}", c.points[i].val_metric);
        }
        println!();
    }

    // Figure 2b analog: validation perplexity on a language task.
    println!("\nLanguage modeling (final validation perplexity):");
    let lm = dataset::markov_text(4096, 1024, 16, 131);
    let lm_cfg = TrainConfig { hidden: 32, lr: 0.3, ..cfg };
    for backend in backends {
        let curve = train_language_model(backend, &lm, &lm_cfg);
        println!("  {:<9} {:.3}", curve.label, curve.final_metric());
    }

    // The ablation behind the operating point: mantissa width.
    println!("\nMantissa-width ablation (final validation error):");
    let ab_cfg = TrainConfig { epochs: 20, hidden: 32, ..Default::default() };
    for curve in mantissa_width_ablation(&[4, 8, 12], &data, &ab_cfg) {
        println!("  {:<8} {:.3}", curve.label, curve.final_metric());
    }
    println!(
        "\nhbfp8 tracks fp32 while using 8-bit fixed-point multipliers — the\n\
         property that lets Equinox's inference arrays run training at all."
    );
}
