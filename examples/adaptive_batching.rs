//! Adaptive batching study (Figure 11): static vs adaptive batch
//! formation and the effect of the issue threshold.
//!
//! Run with: `cargo run --release --example adaptive_batching`

use equinox::core::{Equinox, RunOptions};
use equinox::isa::models::ModelSpec;
use equinox::model::LatencyConstraint;
use equinox::sim::BatchingPolicy;
use equinox_arith::Encoding;

fn main() {
    let eq = Equinox::build(Encoding::Hbfp8, LatencyConstraint::Micros(500))
        .expect("a 500 µs design exists");
    let model = ModelSpec::lstm_2048_25();
    let timing = eq.compile(&model).expect("reference workload compiles");
    let service_ms = timing.service_time_s(eq.freq_hz()) * 1e3;
    println!(
        "{} — batch of {} served in {:.2} ms",
        eq.config().name,
        timing.batch,
        service_ms
    );

    let loads = [0.05, 0.2, 0.5, 0.8, 0.95];
    println!("\np99 latency (ms) by batching policy and load:");
    print!("{:<22}", "policy");
    for l in loads {
        print!("{:>9.0}%", l * 100.0);
    }
    println!();
    for (name, policy) in [
        ("static".to_string(), BatchingPolicy::Static),
        ("adaptive 2x".to_string(), BatchingPolicy::Adaptive { threshold_x: 2.0 }),
    ] {
        print!("{name:<22}");
        for load in loads {
            let r = eq.run_compiled(
                &timing,
                &RunOptions {
                    batching: Some(policy),
                    ..RunOptions::inference(load)
                },
            ).expect("simulation run");
            print!("{:>10.2}", r.p99_ms());
        }
        println!();
    }

    println!("\nThreshold sweep (adaptive), with colocated training at 40% load:");
    println!(
        "{:<12} {:>10} {:>14} {:>18}",
        "threshold", "p99 (ms)", "train (TOp/s)", "incomplete batches"
    );
    for x in [2.0, 4.0, 6.0, 8.0, 10.0] {
        let r = eq.run_compiled(
            &timing,
            &RunOptions {
                batching: Some(BatchingPolicy::Adaptive { threshold_x: x }),
                ..RunOptions::colocated(0.4)
            },
        ).expect("simulation run");
        println!(
            "{:<12} {:>10.2} {:>14.1} {:>17.1}%",
            format!("{x:.0}x service"),
            r.p99_ms(),
            r.training_tops(),
            r.incomplete_batch_fraction() * 100.0
        );
    }
    println!(
        "\nAs in the paper, a 2x threshold bounds batch-formation latency at low \
         load; pushing the threshold higher trades tail latency for little \
         additional training throughput."
    );
}
